"""The ingestion engine: discrete-time execution of a V-ETL job.

The engine drives one ingestion run: segments arrive at the rate the source
produces them, a *policy* (Skyscraper's switcher, or one of the baselines)
chooses a knob configuration and task placement for every segment, the
profiled runtime of that placement advances the processing clock, lag
accumulates in the byte-bounded buffer, and cloud spend is charged against the
daily budget.  This is the Appendix-M simulation model applied end-to-end; the
same engine runs every system in the evaluation so comparisons are apples to
apples.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.cluster.profiler import PlacementProfile
from repro.cluster.resources import CloudSpec, ClusterSpec
from repro.core.interfaces import SegmentOutcome, VETLWorkload
from repro.core.profiles import ConfigurationProfile, ProfileSet
from repro.video.frame import VideoSegment
from repro.video.stream import SyntheticVideoSource

SECONDS_PER_DAY = 86_400.0


@dataclass
class DecisionContext:
    """Everything a policy may observe when deciding how to process a segment.

    Only observable state is exposed: the reported quality of the previous
    segment, buffer occupancy, bandwidth, remaining cloud budget — never the
    ground-truth quality of the segment about to be processed.
    """

    segment: VideoSegment
    decision_time: float
    backlog_bytes: int
    buffer_capacity_bytes: int
    bytes_per_second: float
    lag_seconds: float
    cloud_budget_remaining: float
    last_reported_quality: float
    last_configuration_index: int
    segments_processed: int


@dataclass
class PolicyDecision:
    """A policy's choice for one segment.

    Attributes:
        configuration_index: index into the engine's profile set.
        profile: the chosen configuration's profile.
        placement: the chosen task placement.
        extra_work_core_seconds: additional on-premise work charged to this
            segment (e.g. Chameleon's online profiling overhead).
        metadata: free-form diagnostics stored in the segment trace.
    """

    configuration_index: int
    profile: ConfigurationProfile
    placement: PlacementProfile
    extra_work_core_seconds: float = 0.0
    metadata: Dict[str, float] = field(default_factory=dict)


class Policy(Protocol):
    """A per-segment decision procedure (Skyscraper or a baseline)."""

    name: str

    def decide(self, context: DecisionContext) -> PolicyDecision:
        """Choose configuration and placement for the segment in ``context``."""
        ...

    def observe(self, outcome: SegmentOutcome, decision: PolicyDecision) -> None:
        """Receive the outcome of the segment just processed (optional hook)."""
        ...


@dataclass
class SegmentTrace:
    """Per-segment telemetry recorded by the engine."""

    segment_index: int
    arrival_time: float
    start_time: float
    finish_time: float
    configuration_index: int
    configuration_label: str
    cloud_tasks: int
    runtime_seconds: float
    work_core_seconds: float
    cloud_dollars: float
    reported_quality: float
    true_quality: float
    buffer_bytes: int
    category: Optional[int] = None
    dropped: bool = False


@dataclass
class IngestionResult:
    """Aggregate outcome of one ingestion run."""

    workload_name: str
    policy_name: str
    start_time: float
    end_time: float
    segments_total: int = 0
    segments_dropped: int = 0
    total_true_quality: float = 0.0
    total_reported_quality: float = 0.0
    total_weighted_quality: float = 0.0
    total_quality_weight: float = 0.0
    total_entities: float = 0.0
    on_prem_core_seconds: float = 0.0
    cloud_core_seconds: float = 0.0
    cloud_dollars: float = 0.0
    peak_buffer_bytes: int = 0
    overflowed: bool = False
    overflow_count: int = 0
    configuration_usage: Dict[str, int] = field(default_factory=dict)
    switch_count: int = 0
    traces: List[SegmentTrace] = field(default_factory=list)

    @property
    def mean_true_quality(self) -> float:
        if self.segments_total == 0:
            return 0.0
        return self.total_true_quality / self.segments_total

    @property
    def mean_reported_quality(self) -> float:
        if self.segments_total == 0:
            return 0.0
        return self.total_reported_quality / self.segments_total

    @property
    def weighted_quality(self) -> float:
        """Entity-weighted quality: the paper's quality metrics weight segments
        by how much there is to extract (person-seconds, live streams), so a
        system that only does well on empty night-time content scores low."""
        if self.total_quality_weight <= 0:
            return self.mean_true_quality
        return self.total_weighted_quality / self.total_quality_weight

    @property
    def total_work_core_seconds(self) -> float:
        return self.on_prem_core_seconds + self.cloud_core_seconds


class IngestionEngine:
    """Runs one V-ETL ingestion with a given policy.

    Args:
        workload: the user's V-ETL job.
        source: the video source to ingest.
        cluster: provisioned on-premise hardware.
        cloud: cloud specification, including the optional daily budget.
        buffer_capacity_bytes: size of the video buffer (Equation 1's ``B``).
        keep_traces: whether to record per-segment traces (needed for the
            Figure 3 style plots; disable for large sweeps to save memory).
        on_overflow: ``"drop"`` records the overflow, drops the segment and
            continues (how the evaluation treats Chameleon* crashes);
            ``"raise"`` raises :class:`BufferOverflowError` immediately.
    """

    def __init__(
        self,
        workload: VETLWorkload,
        source: SyntheticVideoSource,
        cluster: ClusterSpec,
        cloud: Optional[CloudSpec] = None,
        buffer_capacity_bytes: int = 4_000_000_000,
        keep_traces: bool = True,
        on_overflow: str = "drop",
    ):
        if on_overflow not in ("drop", "raise"):
            raise ConfigurationError("on_overflow must be 'drop' or 'raise'")
        self.workload = workload
        self.source = source
        self.cluster = cluster
        self.cloud = cloud or CloudSpec()
        self.buffer_capacity_bytes = int(buffer_capacity_bytes)
        self.keep_traces = keep_traces
        self.on_overflow = on_overflow

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self, policy: Policy, start_time: float, end_time: float) -> IngestionResult:
        """Ingest the stream from ``start_time`` to ``end_time`` with ``policy``."""
        if end_time <= start_time:
            raise ConfigurationError("end_time must be after start_time")
        result = IngestionResult(
            workload_name=self.workload.name,
            policy_name=policy.name,
            start_time=start_time,
            end_time=end_time,
        )

        runtime_scale = getattr(self.workload, "runtime_scale", None)
        quality_weight = getattr(self.workload, "quality_weight", None)
        daily_budget = self.cloud.daily_budget_dollars
        cloud_spend_by_day: Dict[int, float] = {}

        # Segments whose processing has not finished yet: (finish_time, bytes).
        unfinished: Deque[Tuple[float, int]] = deque()
        unfinished_bytes = 0
        busy_until = start_time
        last_reported_quality = 1.0
        last_configuration_index = 0
        last_decision_index: Optional[int] = None

        for segment in self.source.segments(start_time, end_time):
            arrival = segment.end_time
            # Retire segments that finished before this one arrived.
            while unfinished and unfinished[0][0] <= arrival:
                _, retired_bytes = unfinished.popleft()
                unfinished_bytes -= retired_bytes
            backlog_before = unfinished_bytes

            result.segments_total += 1
            weight = float(quality_weight(segment)) if quality_weight is not None else 1.0
            result.total_quality_weight += weight
            # Overflow check at arrival (Equation 1).
            if backlog_before + segment.encoded_bytes > self.buffer_capacity_bytes:
                result.overflowed = True
                result.overflow_count += 1
                if self.on_overflow == "raise":
                    from repro.errors import BufferOverflowError

                    raise BufferOverflowError(
                        requested_bytes=segment.encoded_bytes,
                        free_bytes=self.buffer_capacity_bytes - backlog_before,
                        capacity_bytes=self.buffer_capacity_bytes,
                    )
                result.segments_dropped += 1
                if self.keep_traces:
                    result.traces.append(
                        SegmentTrace(
                            segment_index=segment.segment_index,
                            arrival_time=arrival,
                            start_time=arrival,
                            finish_time=arrival,
                            configuration_index=-1,
                            configuration_label="<dropped>",
                            cloud_tasks=0,
                            runtime_seconds=0.0,
                            work_core_seconds=0.0,
                            cloud_dollars=0.0,
                            reported_quality=0.0,
                            true_quality=0.0,
                            buffer_bytes=backlog_before,
                            dropped=True,
                        )
                    )
                continue

            occupancy = backlog_before + segment.encoded_bytes
            result.peak_buffer_bytes = max(result.peak_buffer_bytes, occupancy)

            decision_time = max(arrival, busy_until)
            day_index = int(decision_time // SECONDS_PER_DAY)
            spent_today = cloud_spend_by_day.get(day_index, 0.0)
            cloud_remaining = (
                float("inf") if daily_budget is None else max(daily_budget - spent_today, 0.0)
            )

            bytes_per_second = self.source.bytes_per_second(segment.content)
            lag_seconds = max(decision_time - arrival, 0.0)
            # The policy decides when the cluster frees up, which can be well
            # after this segment arrived; by then more video has arrived, so
            # estimate the occupancy the policy will actually face.
            estimated_backlog = int(occupancy + lag_seconds * bytes_per_second)
            context = DecisionContext(
                segment=segment,
                decision_time=decision_time,
                backlog_bytes=min(estimated_backlog, self.buffer_capacity_bytes),
                buffer_capacity_bytes=self.buffer_capacity_bytes,
                bytes_per_second=bytes_per_second,
                lag_seconds=lag_seconds,
                cloud_budget_remaining=cloud_remaining,
                last_reported_quality=last_reported_quality,
                last_configuration_index=last_configuration_index,
                segments_processed=result.segments_total - 1,
            )
            decision = policy.decide(context)
            placement = decision.placement

            # Enforce the cloud budget even for policies that ignore it.
            if placement.cloud_dollars > cloud_remaining:
                placement = decision.profile.on_prem_placement

            scale = 1.0
            if runtime_scale is not None:
                scale = float(runtime_scale(decision.profile.configuration, segment))
            runtime = placement.runtime_seconds * scale
            extra = decision.extra_work_core_seconds
            runtime += extra / self.cluster.cores

            start = decision_time
            finish = start + runtime
            busy_until = finish
            unfinished.append((finish, segment.encoded_bytes))
            unfinished_bytes += segment.encoded_bytes

            outcome = self.workload.evaluate(decision.profile.configuration, segment)
            policy.observe(outcome, decision)

            cloud_dollars = placement.cloud_dollars * scale
            cloud_spend_by_day[day_index] = spent_today + cloud_dollars
            on_prem_work = placement.on_prem_core_seconds * scale + extra
            cloud_work = placement.cloud_core_seconds * scale

            result.total_true_quality += outcome.true_quality
            result.total_reported_quality += outcome.reported_quality
            result.total_weighted_quality += outcome.true_quality * weight
            result.total_entities += outcome.entities
            result.on_prem_core_seconds += on_prem_work
            result.cloud_core_seconds += cloud_work
            result.cloud_dollars += cloud_dollars
            label = decision.profile.configuration.short_label()
            result.configuration_usage[label] = result.configuration_usage.get(label, 0) + 1
            if last_decision_index is not None and decision.configuration_index != last_decision_index:
                result.switch_count += 1
            last_decision_index = decision.configuration_index

            last_reported_quality = outcome.reported_quality
            last_configuration_index = decision.configuration_index

            if self.keep_traces:
                result.traces.append(
                    SegmentTrace(
                        segment_index=segment.segment_index,
                        arrival_time=arrival,
                        start_time=start,
                        finish_time=finish,
                        configuration_index=decision.configuration_index,
                        configuration_label=label,
                        cloud_tasks=placement.cloud_task_count,
                        runtime_seconds=runtime,
                        work_core_seconds=on_prem_work + cloud_work,
                        cloud_dollars=cloud_dollars,
                        reported_quality=outcome.reported_quality,
                        true_quality=outcome.true_quality,
                        buffer_bytes=occupancy,
                        category=int(decision.metadata.get("category", -1))
                        if "category" in decision.metadata
                        else None,
                    )
                )

        return result
