"""The ingestion engine: discrete-time execution of a V-ETL job.

The engine drives one ingestion run: segments arrive at the rate the source
produces them, a *policy* (Skyscraper's switcher, or one of the baselines)
chooses a knob configuration and task placement for every segment, the
profiled runtime of that placement advances the processing clock, lag
accumulates in the byte-bounded buffer, and cloud spend is charged against the
daily budget.  This is the Appendix-M simulation model applied end-to-end; the
same engine runs every system in the evaluation so comparisons are apples to
apples.

Since the fleet-runtime redesign the execution itself is event driven: the
loop lives in :mod:`repro.core.events` (arrival/finish events on a heap
clock, per-stream :class:`~repro.core.events.StreamSession` state) and
:mod:`repro.core.fleet` (the multi-stream :class:`~repro.core.fleet.FleetEngine`
with pluggable schedulers and a shared daily cloud-budget ledger).
:class:`IngestionEngine` remains the single-stream API: it runs a one-stream
fleet and returns that stream's result, bit-for-bit identical to the historic
sequential implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from repro.errors import ConfigurationError
from repro.cluster.profiler import PlacementProfile
from repro.cluster.resources import CloudSpec, ClusterSpec
from repro.core.interfaces import SegmentOutcome, VETLWorkload
from repro.core.profiles import ConfigurationProfile
from repro.video.frame import VideoSegment
from repro.video.stream import SyntheticVideoSource

SECONDS_PER_DAY = 86_400.0


@dataclass
class DecisionContext:
    """Everything a policy may observe when deciding how to process a segment.

    Only observable state is exposed: the reported quality of the previous
    segment, buffer occupancy, bandwidth, remaining cloud budget — never the
    ground-truth quality of the segment about to be processed.
    """

    segment: VideoSegment
    decision_time: float
    backlog_bytes: int
    buffer_capacity_bytes: int
    bytes_per_second: float
    lag_seconds: float
    cloud_budget_remaining: float
    last_reported_quality: float
    last_configuration_index: int
    segments_processed: int


@dataclass
class PolicyDecision:
    """A policy's choice for one segment.

    Attributes:
        configuration_index: index into the engine's profile set.
        profile: the chosen configuration's profile.
        placement: the chosen task placement.
        extra_work_core_seconds: additional on-premise work charged to this
            segment (e.g. Chameleon's online profiling overhead).
        metadata: free-form diagnostics stored in the segment trace.
    """

    configuration_index: int
    profile: ConfigurationProfile
    placement: PlacementProfile
    extra_work_core_seconds: float = 0.0
    metadata: Dict[str, float] = field(default_factory=dict)


class Policy(Protocol):
    """A per-segment decision procedure (Skyscraper or a baseline)."""

    name: str

    def decide(self, context: DecisionContext) -> PolicyDecision:
        """Choose configuration and placement for the segment in ``context``."""
        ...

    def observe(self, outcome: SegmentOutcome, decision: PolicyDecision) -> None:
        """Receive the outcome of the segment just processed (optional hook)."""
        ...


@dataclass
class SegmentTrace:
    """Per-segment telemetry recorded by the engine."""

    segment_index: int
    arrival_time: float
    start_time: float
    finish_time: float
    configuration_index: int
    configuration_label: str
    cloud_tasks: int
    runtime_seconds: float
    work_core_seconds: float
    cloud_dollars: float
    reported_quality: float
    true_quality: float
    buffer_bytes: int
    category: Optional[int] = None
    dropped: bool = False


@dataclass
class IngestionResult:
    """Aggregate outcome of one ingestion run (one stream)."""

    workload_name: str
    policy_name: str
    start_time: float
    end_time: float
    stream_id: str = ""
    segments_total: int = 0
    segments_dropped: int = 0
    total_true_quality: float = 0.0
    total_reported_quality: float = 0.0
    total_weighted_quality: float = 0.0
    total_quality_weight: float = 0.0
    total_entities: float = 0.0
    on_prem_core_seconds: float = 0.0
    cloud_core_seconds: float = 0.0
    cloud_dollars: float = 0.0
    total_lag_seconds: float = 0.0
    max_lag_seconds: float = 0.0
    peak_buffer_bytes: int = 0
    overflowed: bool = False
    overflow_count: int = 0
    configuration_usage: Dict[str, int] = field(default_factory=dict)
    switch_count: int = 0
    traces: List[SegmentTrace] = field(default_factory=list)
    #: Free-form telemetry the policy reports at the end of a run (via an
    #: optional ``ingestion_metrics()`` method) — e.g. the adaptive policy's
    #: drift-trigger and re-fit counters.  Empty for ordinary policies.
    policy_metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_true_quality(self) -> float:
        if self.segments_total == 0:
            return 0.0
        return self.total_true_quality / self.segments_total

    @property
    def mean_reported_quality(self) -> float:
        if self.segments_total == 0:
            return 0.0
        return self.total_reported_quality / self.segments_total

    @property
    def weighted_quality(self) -> float:
        """Entity-weighted quality: the paper's quality metrics weight segments
        by how much there is to extract (person-seconds, live streams), so a
        system that only does well on empty night-time content scores low."""
        if self.total_quality_weight <= 0:
            return self.mean_true_quality
        return self.total_weighted_quality / self.total_quality_weight

    @property
    def mean_lag_seconds(self) -> float:
        """Mean decision lag over processed (non-dropped) segments."""
        processed = self.segments_total - self.segments_dropped
        if processed <= 0:
            return 0.0
        return self.total_lag_seconds / processed

    @property
    def total_work_core_seconds(self) -> float:
        return self.on_prem_core_seconds + self.cloud_core_seconds


class IngestionEngine:
    """Runs one single-stream V-ETL ingestion with a given policy.

    This is a thin wrapper over a one-stream
    :class:`~repro.core.fleet.FleetEngine`; multi-stream ingestion with
    pluggable scheduling lives there.

    Args:
        workload: the user's V-ETL job.
        source: the video source to ingest.
        cluster: provisioned on-premise hardware.
        cloud: cloud specification, including the optional daily budget.
        buffer_capacity_bytes: size of the video buffer (Equation 1's ``B``).
        keep_traces: whether to record per-segment traces (needed for the
            Figure 3 style plots; disable for large sweeps to save memory).
        on_overflow: ``"drop"`` records the overflow, drops the segment and
            continues (how the evaluation treats Chameleon* crashes);
            ``"raise"`` raises :class:`BufferOverflowError` immediately.
    """

    def __init__(
        self,
        workload: VETLWorkload,
        source: SyntheticVideoSource,
        cluster: ClusterSpec,
        cloud: Optional[CloudSpec] = None,
        buffer_capacity_bytes: int = 4_000_000_000,
        keep_traces: bool = True,
        on_overflow: str = "drop",
    ):
        if on_overflow not in ("drop", "raise"):
            raise ConfigurationError("on_overflow must be 'drop' or 'raise'")
        self.workload = workload
        self.source = source
        self.cluster = cluster
        self.cloud = cloud or CloudSpec()
        self.buffer_capacity_bytes = int(buffer_capacity_bytes)
        self.keep_traces = keep_traces
        self.on_overflow = on_overflow

    def run(self, policy: Policy, start_time: float, end_time: float) -> IngestionResult:
        """Ingest the stream from ``start_time`` to ``end_time`` with ``policy``."""
        from repro.core.fleet import FleetEngine, FleetStream

        fleet = FleetEngine(
            cluster=self.cluster,
            cloud=self.cloud,
            scheduler="fifo",
            keep_traces=self.keep_traces,
        )
        stream = FleetStream(
            workload=self.workload,
            source=self.source,
            policy=policy,
            buffer_capacity_bytes=self.buffer_capacity_bytes,
            on_overflow=self.on_overflow,
        )
        fleet_result = fleet.run([stream], start_time, end_time)
        (result,) = fleet_result.stream_results.values()
        return result
