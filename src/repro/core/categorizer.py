"""Content categories (Section 3.2).

Skyscraper samples video segments from the unlabeled training data, processes
each with every filtered knob configuration, and clusters the resulting
|K|-dimensional quality vectors with KMeans.  A content category is a cluster;
its center gives the average quality every configuration achieves on content
of that category.

During online ingestion only one dimension of the quality vector is observable
(the quality of the configuration that actually ran), so classification
reduces to the nearest center along that single dimension (Equation 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.ml.gmm import GaussianMixture
from repro.ml.kmeans import KMeans


@dataclass(frozen=True)
class ClassificationScore:
    """A single-dimension classification together with its confidence signals.

    Attributes:
        category: the Equation 5 nearest-center category (identical to what
            :meth:`ContentCategorizer.classify_partial` returns).
        residual: distance from the observed quality to the chosen center —
            small while content resembles the fitted clusters, growing when
            observations drift away from every center (the drift monitor's
            confidence channel).
        margin: distance gap between the runner-up center and the chosen one
            (0 when only one category exists); small margins mean ambiguous
            classifications.
    """

    category: int
    residual: float
    margin: float


class ContentCategorizer:
    """Clusters quality vectors into content categories.

    Args:
        n_categories: number of content categories (Appendix I.1 recommends 4
            as a default and ≥ 3 as a safe range).
        method: ``"kmeans"`` (default, what the paper ships) or ``"gmm"``
            (the Appendix B.2 ablation alternative).
        seed: RNG seed for clustering initialization.
    """

    def __init__(self, n_categories: int = 4, method: str = "kmeans", seed: int = 0):
        if n_categories < 1:
            raise ConfigurationError("n_categories must be at least 1")
        if method not in ("kmeans", "gmm"):
            raise ConfigurationError("method must be 'kmeans' or 'gmm'")
        self.n_categories = n_categories
        self.method = method
        self.seed = seed
        self._centers: Optional[np.ndarray] = None
        self._model = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, quality_vectors: np.ndarray) -> "ContentCategorizer":
        """Cluster the |K|-dimensional quality vectors of the sampled segments."""
        vectors = np.asarray(quality_vectors, dtype=float)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise ConfigurationError("quality_vectors must be a non-empty 2-D array")
        if self.method == "kmeans":
            model = KMeans(n_clusters=self.n_categories, seed=self.seed)
            model.fit(vectors)
            centers = model.centers
        else:
            model = GaussianMixture(n_components=self.n_categories, seed=self.seed)
            model.fit(vectors)
            centers = model.means
        # Order categories from easiest (highest mean quality) to hardest so
        # category indices are stable and human readable.
        order = np.argsort(-centers.mean(axis=1))
        self._centers = centers[order]
        self._model = model
        return self

    @classmethod
    def from_centers(
        cls,
        centers: np.ndarray,
        method: str = "kmeans",
        seed: int = 0,
        n_categories: Optional[int] = None,
    ) -> "ContentCategorizer":
        """Rebuild a fitted categorizer from saved cluster centers.

        Classification only needs the centers, so this restores everything a
        serialized offline phase requires (see
        :class:`~repro.core.artifacts.OfflineArtifacts`).
        """
        center_array = np.asarray(centers, dtype=float)
        if center_array.ndim != 2 or center_array.shape[0] == 0:
            raise ConfigurationError("centers must be a non-empty 2-D array")
        categorizer = cls(
            n_categories=n_categories or center_array.shape[0],
            method=method,
            seed=seed,
        )
        categorizer._centers = center_array
        return categorizer

    @property
    def is_fitted(self) -> bool:
        return self._centers is not None

    @property
    def centers(self) -> np.ndarray:
        """``(n_categories, n_configurations)`` cluster centers."""
        if self._centers is None:
            raise NotFittedError("ContentCategorizer.fit has not been called")
        return self._centers

    @property
    def n_configurations(self) -> int:
        return self.centers.shape[1]

    @property
    def actual_categories(self) -> int:
        """Number of categories actually fitted (≤ requested when data is small)."""
        return self.centers.shape[0]

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #
    def category_quality(self, configuration_index: int, category: int) -> float:
        """Average quality of a configuration on a category (cluster center entry)."""
        centers = self.centers
        if not 0 <= configuration_index < centers.shape[1]:
            raise ConfigurationError("configuration_index out of range")
        if not 0 <= category < centers.shape[0]:
            raise ConfigurationError("category out of range")
        return float(centers[category, configuration_index])

    def classify(self, quality_vector: Sequence[float]) -> int:
        """Full-vector classification (used offline when all qualities are known)."""
        vector = np.asarray(quality_vector, dtype=float)
        centers = self.centers
        if vector.shape != (centers.shape[1],):
            raise ConfigurationError(
                f"expected a quality vector of length {centers.shape[1]}, got {vector.shape}"
            )
        distances = np.linalg.norm(centers - vector[np.newaxis, :], axis=1)
        return int(np.argmin(distances))

    def classify_partial(self, configuration_index: int, observed_quality: float) -> int:
        """Single-dimension classification (Equation 5, the knob switcher's path)."""
        centers = self.centers
        if not 0 <= configuration_index < centers.shape[1]:
            raise ConfigurationError("configuration_index out of range")
        distances = np.abs(centers[:, configuration_index] - observed_quality)
        return int(np.argmin(distances))

    def classification_score(
        self, configuration_index: int, observed_quality: float
    ) -> ClassificationScore:
        """:meth:`classify_partial` plus the confidence signals around it.

        The category matches :meth:`classify_partial` exactly (same distance
        rule, same lowest-index tie-break); the residual and margin feed the
        online drift monitor without a second distance computation.
        """
        centers = self.centers
        if not 0 <= configuration_index < centers.shape[1]:
            raise ConfigurationError("configuration_index out of range")
        distances = np.abs(centers[:, configuration_index] - observed_quality)
        category = int(np.argmin(distances))
        residual = float(distances[category])
        if distances.shape[0] < 2:
            margin = 0.0
        else:
            runner_up = float(np.partition(distances, 1)[1])
            margin = runner_up - residual
        return ClassificationScore(category=category, residual=residual, margin=margin)

    def classify_partial_many(
        self, configuration_index: int, observed_qualities: Sequence[float]
    ) -> np.ndarray:
        """Vectorized :meth:`classify_partial` over a series of observations.

        Ties break toward the lowest category index, exactly like the scalar
        rule, so the offline labeling pass can batch through here and stay
        bit-for-bit identical to a per-observation loop.
        """
        centers = self.centers
        if not 0 <= configuration_index < centers.shape[1]:
            raise ConfigurationError("configuration_index out of range")
        observed = np.asarray(observed_qualities, dtype=float)
        if observed.ndim != 1:
            raise ConfigurationError("observed_qualities must be 1-D")
        distances = np.abs(observed[:, np.newaxis] - centers[np.newaxis, :, configuration_index])
        return np.argmin(distances, axis=1)

    def classify_many(self, quality_vectors: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`classify` over many quality vectors."""
        vectors = np.asarray(quality_vectors, dtype=float)
        if vectors.ndim != 2:
            raise ConfigurationError("quality_vectors must be 2-D")
        centers = self.centers
        distances = np.linalg.norm(
            vectors[:, np.newaxis, :] - centers[np.newaxis, :, :], axis=2
        )
        return np.argmin(distances, axis=1)

    # ------------------------------------------------------------------ #
    # Derived data
    # ------------------------------------------------------------------ #
    def category_histogram(self, labels: Sequence[int]) -> np.ndarray:
        """Normalized frequency of every category in a label sequence."""
        counts = np.bincount(np.asarray(labels, dtype=int), minlength=self.actual_categories)
        counts = counts[: self.actual_categories].astype(float)
        total = counts.sum()
        if total <= 0:
            return np.full(self.actual_categories, 1.0 / self.actual_categories)
        return counts / total

    def describe(self) -> List[str]:
        """Human-readable description of every category (for logs and examples)."""
        lines = []
        for category in range(self.actual_categories):
            center = self.centers[category]
            lines.append(
                f"category {category}: mean quality {center.mean():.2f} "
                f"(per-configuration {np.round(center, 2).tolist()})"
            )
        return lines
