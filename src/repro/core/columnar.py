"""Columnar hot-path structures for the simulation core.

The per-object loops the engine grew up with (one ``state_at`` per segment,
one nested placement scan per switch decision, one attribute-chasing pass per
arrival) are replaced by structure-of-arrays views built **once** from the
existing object model and consumed by array ops:

* :class:`PlacementTable` — every (configuration, placement) pair of a
  :class:`~repro.core.profiles.ProfileSet` flattened into runtime/cost
  columns in the switcher's exact scan order, so
  :meth:`~repro.core.switcher.KnobSwitcher.decide` becomes a sliced mask
  reduction instead of two nested Python loops;
* :class:`SessionColumns` — one stream's whole ingestion window as columns
  (arrival times, encoded sizes, bitrates, quality weights), built from a
  single batched pass over the content model
  (:meth:`~repro.video.stream.SyntheticVideoSource.segment_columns`); the
  event loop reads plain Python lists (no ``np.int64`` leaks into results or
  JSON) and materializes a :class:`~repro.video.frame.VideoSegment` only
  when a segment is actually processed.

Parity contract: every consumer keeps its object API and is pinned against
the frozen pre-vectorization loop in :mod:`repro.core.reference` —
bit-for-bit where only loop structure changed, and to a documented ~1 ulp
tolerance where ``np.exp``/``np.power`` replaced ``math`` calls (see
``tests/core/test_hotpath_parity.py``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.profiler import PlacementProfile
from repro.core.interfaces import VETLWorkload
from repro.core.profiles import ProfileSet
from repro.video.stream import SegmentColumns, SyntheticVideoSource


class PlacementTable:
    """The switcher's feasibility scan, flattened into columns.

    The scalar switcher walks configurations from the planned one through
    ever less qualitative ones (``_fallback_order``) and, per configuration,
    its placements cheapest cloud spend first, returning the first placement
    that is within budget and fits the buffer.  This table stores exactly
    that scan order once: row ``k`` is the ``k``-th (configuration,
    placement) pair the scalar scan would visit when the *most* qualitative
    configuration is planned; planning a less qualitative configuration just
    starts the scan at that configuration's first row.

    :meth:`select` evaluates the same IEEE comparisons as the scalar loop
    over a slice of these columns, so its result is identical decision for
    decision (including the budget epsilon, the first-fit tie-break, and the
    first-strict-minimum "last resort" runtime scan).
    """

    def __init__(
        self,
        profiles: ProfileSet,
        quality_order: List[int],
        segment_duration: float,
        buffer_capacity_bytes: int,
        safety_margin: float,
    ):
        config_indices: List[int] = []
        placements: List[PlacementProfile] = []
        runtimes: List[float] = []
        cloud_dollars: List[float] = []
        #: first table row of each configuration's placement block, by
        #: configuration index (the scan for planned configuration ``c``
        #: covers ``rows[start_row[c]:]``).
        self.start_row = np.zeros(len(profiles), dtype=np.int64)
        for config_index in quality_order:
            profile = profiles[config_index]
            self.start_row[config_index] = len(placements)
            for placement in profile.placements_by_cloud_cost():
                config_indices.append(config_index)
                placements.append(placement)
                runtimes.append(placement.runtime_seconds)
                cloud_dollars.append(placement.cloud_dollars)
        self.config_index = np.array(config_indices, dtype=np.int64)
        self.placements = placements
        self.runtime_seconds = np.array(runtimes, dtype=float)
        self.cloud_dollars = np.array(cloud_dollars, dtype=float)
        #: buffer growth while a placement runs, per produced byte/s
        #: (``max(runtime - segment_duration, 0)``) — precomputed because it
        #: only depends on the placement.
        self.growth_seconds = np.maximum(self.runtime_seconds - segment_duration, 0.0)
        self.segment_duration = segment_duration
        #: the scalar loop computes ``capacity * safety_margin`` afresh per
        #: call; the product is identical, so precomputing keeps parity.
        self.buffer_threshold = buffer_capacity_bytes * safety_margin
        self._on_prem = [profile.on_prem_placement for profile in profiles]

    def select(
        self,
        planned_choice: int,
        backlog_bytes: int,
        bytes_per_second: float,
        cloud_budget_remaining: float,
    ) -> Tuple[int, PlacementProfile, bool]:
        """Vectorized twin of ``KnobSwitcher._select_feasible``."""
        start = int(self.start_row[planned_choice])
        budget_ok = self.cloud_dollars[start:] <= cloud_budget_remaining + 1e-12
        rate = max(bytes_per_second, 0.0)
        headroom = self.segment_duration * rate
        predicted = (backlog_bytes + self.growth_seconds[start:] * rate) + headroom
        fits = predicted <= self.buffer_threshold
        wins = budget_ok & fits
        if wins.any():
            row = start + int(np.argmax(wins))
            choice = int(self.config_index[row])
            return choice, self.placements[row], choice != planned_choice
        if not budget_ok.any():
            # Nothing is within budget: run the planned configuration on
            # premises (the scalar loop's empty-candidate fallback).
            return planned_choice, self._on_prem[planned_choice], False
        # No placement avoids the overflow; pick the fastest in-budget one.
        # ``np.argmin`` returns the first occurrence of the minimum, matching
        # the scalar scan's strict-improvement update order.
        masked_runtime = np.where(budget_ok, self.runtime_seconds[start:], np.inf)
        row = start + int(np.argmin(masked_runtime))
        return int(self.config_index[row]), self.placements[row], True


class SessionColumns:
    """One stream's ingestion window as columns plus lazy row materialization.

    All per-arrival values the event loop touches are Python-native lists
    (converted once via ``ndarray.tolist()``), so heap entries, buffer
    arithmetic and results stay free of numpy scalar types.  The value in
    every column is bit-for-bit what the scalar path computed:

    * ``arrival_times[i]`` — ``segment.end_time`` (``start + duration``);
    * ``encoded_bytes[i]`` — the H.264 model's segment size;
    * ``bytes_per_second[i]`` — ``encoded_bytes / segment_seconds``, which
      is exactly ``SyntheticVideoSource.bytes_per_second`` (the scalar path
      re-derived the same integer from the content state);
    * ``weights[i]`` — the workload's quality weight, or ``None`` when the
      workload defines no weight (treated as 1.0 by the session).
    """

    def __init__(
        self,
        source: SyntheticVideoSource,
        workload: VETLWorkload,
        start_time: float,
        end_time: float,
    ):
        columns = source.segment_columns(start_time, end_time)
        self.columns: SegmentColumns = columns
        duration = source.segment_seconds
        self.segment_indices: List[int] = columns.segment_index.tolist()
        self.arrival_times: List[float] = (columns.start_time + duration).tolist()
        self.encoded_bytes: List[int] = columns.encoded_bytes.tolist()
        self.bytes_per_second: List[float] = (columns.encoded_bytes / duration).tolist()
        self.weights: Optional[List[float]] = None
        quality_weight = getattr(workload, "quality_weight", None)
        if quality_weight is not None:
            weight_columns = getattr(workload, "quality_weight_columns", None)
            if weight_columns is not None:
                self.weights = np.asarray(weight_columns(columns), dtype=float).tolist()
            else:
                self.weights = [
                    float(quality_weight(columns.segment(i))) for i in range(len(columns))
                ]

    def __len__(self) -> int:
        return len(self.segment_indices)

    def segment(self, position: int):
        """Materialize row ``position`` as a :class:`VideoSegment`."""
        return self.columns.segment(position)
