"""Policies: per-segment decision procedures driven by the ingestion engine.

:class:`SkyscraperPolicy` combines the predictive knob planner (re-run every
planned interval on a fresh forecast) with the reactive knob switcher (run
every switching period).  The baseline systems of the evaluation implement the
same :class:`~repro.core.engine.Policy` protocol in :mod:`repro.baselines`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.core.categorizer import ContentCategorizer
from repro.core.engine import DecisionContext, PolicyDecision
from repro.core.forecaster import ContentForecaster
from repro.core.interfaces import SegmentOutcome
from repro.core.planner import KnobPlanner
from repro.core.profiles import ProfileSet
from repro.core.switcher import KnobSwitcher

# Re-export the protocol so ``from repro.core.policy import Policy`` works.
from repro.core.engine import Policy  # noqa: F401  (re-export)


class SkyscraperPolicy:
    """The full online Skyscraper: predictive planning + reactive switching.

    Args:
        profiles: filtered and profiled knob configurations.
        categorizer: fitted content categorizer.
        planner: the LP knob planner.
        initial_forecast: content distribution used for the very first plan
            (typically the category distribution of the unlabeled training
            data).
        budget_core_seconds_per_segment: per-segment compute budget handed to
            the planner (on-premise cores × segment length, plus the cloud
            credits converted to core-seconds).
        segment_duration: segment length in seconds.
        buffer_capacity_bytes: video buffer capacity.
        forecaster: trained forecasting model; if ``None`` the policy keeps
            re-using the initial forecast (useful for ablations).
        switch_period_seconds: how often the knob switcher re-decides
            (default 4 s, Appendix I).
        planned_interval_seconds: how often the knob planner re-plans
            (default 2 days, Appendix I).
        forecast_input_seconds: look-back window the forecaster receives.
    """

    name = "skyscraper"

    def __init__(
        self,
        profiles: ProfileSet,
        categorizer: ContentCategorizer,
        planner: KnobPlanner,
        initial_forecast: Sequence[float],
        budget_core_seconds_per_segment: float,
        segment_duration: float,
        buffer_capacity_bytes: int,
        forecaster: Optional[ContentForecaster] = None,
        switch_period_seconds: float = 4.0,
        planned_interval_seconds: float = 2 * 86_400.0,
        forecast_input_seconds: float = 2 * 86_400.0,
    ):
        if switch_period_seconds <= 0:
            raise ConfigurationError("switch_period_seconds must be positive")
        if planned_interval_seconds <= 0:
            raise ConfigurationError("planned_interval_seconds must be positive")
        self.profiles = profiles
        self.categorizer = categorizer
        self.planner = planner
        self.forecaster = forecaster
        self.budget_core_seconds_per_segment = budget_core_seconds_per_segment
        self.segment_duration = segment_duration
        self.switch_period_seconds = switch_period_seconds
        self.planned_interval_seconds = planned_interval_seconds
        self.forecast_input_seconds = forecast_input_seconds

        initial = np.asarray(initial_forecast, dtype=float)
        plan = planner.plan(initial, budget_core_seconds_per_segment)
        self.switcher = KnobSwitcher(
            profiles=profiles,
            categorizer=categorizer,
            plan=plan,
            segment_duration=segment_duration,
            buffer_capacity_bytes=buffer_capacity_bytes,
        )
        self._last_switch_time: Optional[float] = None
        self._last_decision: Optional[PolicyDecision] = None
        self._next_planning_time: Optional[float] = None
        self.replans = 0

    # ------------------------------------------------------------------ #
    # Policy protocol
    # ------------------------------------------------------------------ #
    def decide(self, context: DecisionContext) -> PolicyDecision:
        now = context.decision_time
        if self._next_planning_time is None:
            self._next_planning_time = now + self.planned_interval_seconds
        elif now >= self._next_planning_time:
            self._replan(now)
            self._next_planning_time = now + self.planned_interval_seconds

        due = (
            self._last_switch_time is None
            or now - self._last_switch_time >= self.switch_period_seconds - 1e-9
            or self._last_decision is None
        )
        if not due:
            # Re-use the previous decision within the switching period, but
            # never blow the buffer: fall back to re-deciding when the
            # previously chosen placement no longer fits the backlog.
            placement = self._last_decision.placement
            growth = max(placement.runtime_seconds - self.segment_duration, 0.0)
            headroom = self.segment_duration * context.bytes_per_second
            predicted = context.backlog_bytes + growth * context.bytes_per_second + headroom
            if predicted <= context.buffer_capacity_bytes * 0.98:
                return self._last_decision

        switch = self.switcher.decide(
            observed_quality=context.last_reported_quality,
            current_configuration_index=context.last_configuration_index,
            backlog_bytes=context.backlog_bytes,
            bytes_per_second=context.bytes_per_second,
            cloud_budget_remaining=context.cloud_budget_remaining,
            timestamp=now,
        )
        decision = PolicyDecision(
            configuration_index=switch.configuration_index,
            profile=switch.profile,
            placement=switch.placement,
            metadata={
                "category": float(switch.category),
                "fell_back": 1.0 if switch.fell_back else 0.0,
            },
        )
        self._last_switch_time = now
        self._last_decision = decision
        return decision

    def observe(self, outcome: SegmentOutcome, decision: PolicyDecision) -> None:
        """The engine reports outcomes; the switcher already tracks history."""
        return None

    # ------------------------------------------------------------------ #
    # Periodic re-planning
    # ------------------------------------------------------------------ #
    def _replan(self, now: float) -> None:
        forecast = self._forecast(now)
        plan = self.planner.plan(forecast, self.budget_core_seconds_per_segment)
        self.switcher.update_plan(plan)
        self.replans += 1

    def _forecast(self, now: float) -> np.ndarray:
        n_categories = self.categorizer.actual_categories
        history = self.switcher.category_history
        if self.forecaster is None or not self.forecaster.is_fitted or not history:
            return self._historical_distribution(history, n_categories)
        n_splits = self.forecaster.n_splits
        window = self.forecast_input_seconds
        split_length = window / n_splits
        histograms = []
        for split_index in range(n_splits):
            split_start = now - window + split_index * split_length
            split_end = split_start + split_length
            labels = [
                category
                for timestamp, category in history
                if split_start <= timestamp < split_end
            ]
            if labels:
                histograms.append(self._labels_to_histogram(labels, n_categories))
            else:
                histograms.append(np.full(n_categories, 1.0 / n_categories))
        return self.forecaster.predict(histograms)

    @staticmethod
    def _labels_to_histogram(labels: List[int], n_categories: int) -> np.ndarray:
        counts = np.bincount(np.asarray(labels, dtype=int), minlength=n_categories)
        counts = counts[:n_categories].astype(float)
        total = counts.sum()
        if total <= 0:
            return np.full(n_categories, 1.0 / n_categories)
        return counts / total

    @staticmethod
    def _historical_distribution(history, n_categories: int) -> np.ndarray:
        if not history:
            return np.full(n_categories, 1.0 / n_categories)
        labels = [category for _, category in history]
        return SkyscraperPolicy._labels_to_histogram(labels, n_categories)
