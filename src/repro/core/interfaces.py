"""Interfaces between Skyscraper's core and user-defined V-ETL jobs.

The paper keeps Skyscraper agnostic to the UDFs: the system only ever sees a
task graph to execute and a quality number reported back by the user code
(Section 2.2, Appendix F).  These protocol classes capture exactly that
boundary; every workload in :mod:`repro.workloads` implements
:class:`VETLWorkload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.core.knobs import KnobConfiguration, KnobSpace
from repro.video.frame import VideoSegment
from repro.vision.dag import TaskGraph


@dataclass
class SegmentOutcome:
    """What processing one segment with one configuration produced.

    Attributes:
        reported_quality: the quality metric computed and returned by the
            user code (certainties, tracking failures, ...) in [0, 1].  This
            is the only quality signal Skyscraper itself may observe.
        true_quality: ground-truth quality in [0, 1] used exclusively by the
            evaluation harness (the system never reads it).
        entities: number of entities extracted from the segment.
        warehouse_rows: rows to load into the warehouse tables, keyed by
            table kind (``"detections"``, ``"tracks"``, ``"sentiments"``).
    """

    reported_quality: float
    true_quality: float
    entities: float = 0.0
    warehouse_rows: Dict[str, List[Any]] = field(default_factory=dict)


@runtime_checkable
class VETLWorkload(Protocol):
    """A user-defined V-ETL job: knobs, a task graph per configuration, quality.

    Implementations must be deterministic given (configuration, segment) so
    offline profiling and online ingestion agree.
    """

    name: str
    knob_space: KnobSpace

    def build_task_graph(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> TaskGraph:
        """The DAG of UDF invocations that processes ``segment`` with ``configuration``."""
        ...

    def evaluate(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> SegmentOutcome:
        """Process ``segment`` with ``configuration`` and report the outcome."""
        ...

    def evaluate_many(
        self, pairs: Sequence[Tuple[KnobConfiguration, VideoSegment]]
    ) -> List[SegmentOutcome]:
        """Batched :meth:`evaluate` over (configuration, segment) pairs.

        The offline pipeline funnels all of its evaluations through this hook
        so workloads may vectorize the batch; the default implementation in
        :class:`~repro.workloads.base.BaseWorkload` simply loops.
        """
        ...

    def representative_segment(self) -> VideoSegment:
        """A typical segment used for profiling runtimes and placements."""
        ...


def evaluate_pairs(
    workload: VETLWorkload,
    pairs: Sequence[Tuple[KnobConfiguration, VideoSegment]],
    evaluator: Optional[Any] = None,
) -> List[SegmentOutcome]:
    """Batched evaluation through an optional shared evaluation cache.

    ``evaluator`` is anything exposing ``evaluate_many`` (typically
    :class:`~repro.core.offline.EvaluationCache`); without one, the batch goes
    to the workload's own ``evaluate_many`` when present, falling back to a
    plain loop for minimal protocol implementations.
    """
    pairs = list(pairs)
    if evaluator is not None:
        return evaluator.evaluate_many(pairs)
    evaluate_many = getattr(workload, "evaluate_many", None)
    if evaluate_many is not None:
        return evaluate_many(pairs)
    return [workload.evaluate(configuration, segment) for configuration, segment in pairs]
