"""Job admission, dispatch ordering, and dead-letter-queue management.

The :class:`JobDispatcher` owns the queue discipline in front of the shard
workers: ``submit`` admits jobs against per-tenant quotas, ``ready_jobs``
selects what may run *now* (backoff timestamps and per-tenant running caps
respected, submission order preserved), and ``requeue_from_dlq`` is the
operator's lever to give a dead-lettered job a fresh set of retries.  The
dispatcher never talks to workers — the service maps ready jobs to shards
and transitions their state; the dispatcher decides *which* jobs are
eligible, keeping admission policy in one testable place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import AdmissionError, ConfigurationError
from repro.service.jobs import (
    DEAD_LETTER,
    QUEUED,
    RUNNING,
    IngestionJob,
    JobStore,
)

# Re-exported for backwards compatibility: admission failures were defined
# here before the joint planner needed to raise them from repro.planning.
__all__ = ["AdmissionError", "JobDispatcher", "TenantQuota"]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant isolation caps (``None`` means unlimited).

    ``max_queued`` bounds admission — submissions beyond it are rejected
    with :class:`AdmissionError` so one tenant cannot flood the queue;
    ``max_running`` bounds concurrency — the dispatcher never marks more
    than this many of the tenant's jobs ready at once, so a tenant's burst
    cannot monopolize the shard workers.
    """

    max_queued: Optional[int] = None
    max_running: Optional[int] = None


class JobDispatcher:
    """Admits, orders, and requeues ingestion jobs through a :class:`JobStore`.

    Args:
        store: the job store shared with the service.
        quotas: per-tenant quota overrides, by tenant id.
        default_quota: quota applied to tenants without an override.
        admission: optional hook called with the tenant id before quota
            checks; raising :class:`AdmissionError` (or a subclass, e.g.
            the planner's SLO check) vetoes the submission.  The service
            installs :meth:`repro.planning.admission.AdmissionController.check`
            here when a fleet planner is configured.
    """

    def __init__(
        self,
        store: JobStore,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default_quota: TenantQuota = TenantQuota(),
        admission: Optional[Callable[[str], None]] = None,
    ):
        self.store = store
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self.admission = admission

    def quota_for(self, tenant_id: str) -> TenantQuota:
        """The quota governing ``tenant_id``."""
        return self.quotas.get(tenant_id, self.default_quota)

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        stream_id: str,
        stream_index: int = 0,
        tenant_id: str = "default",
        system: Optional[str] = None,
        max_retries: int = 3,
        inject_failures: int = 0,
        now: float = 0.0,
        job_id: Optional[str] = None,
    ) -> IngestionJob:
        """Admit one stream-ingestion job, enforcing admission and queue caps."""
        if self.admission is not None:
            self.admission(tenant_id)
        quota = self.quota_for(tenant_id)
        if quota.max_queued is not None:
            queued = len(self.store.list(status=QUEUED, tenant_id=tenant_id))
            if queued >= quota.max_queued:
                raise AdmissionError(
                    f"tenant {tenant_id!r} has {queued} queued jobs, at its "
                    f"max_queued={quota.max_queued} cap"
                )
        job = IngestionJob.create(
            stream_id=stream_id,
            stream_index=stream_index,
            tenant_id=tenant_id,
            system=system,
            max_retries=max_retries,
            inject_failures=inject_failures,
            now=now,
            job_id=job_id,
        )
        return self.store.add(job)

    # ------------------------------------------------------------------ #
    # Dispatch ordering
    # ------------------------------------------------------------------ #
    def ready_jobs(self, now: float) -> List[IngestionJob]:
        """Queued jobs eligible to run at ``now``, in submission order.

        A job is eligible when its retry backoff has elapsed
        (``next_retry_at <= now``) and dispatching it would not push its
        tenant past ``max_running`` (jobs already running count against the
        cap, and earlier selections of this call do too).
        """
        running_per_tenant: Dict[str, int] = {}
        for job in self.store.list(status=RUNNING):
            running_per_tenant[job.tenant_id] = running_per_tenant.get(job.tenant_id, 0) + 1
        ready: List[IngestionJob] = []
        for job in self.store.list(status=QUEUED):
            if job.next_retry_at > now:
                continue
            cap = self.quota_for(job.tenant_id).max_running
            if cap is not None and running_per_tenant.get(job.tenant_id, 0) >= cap:
                continue
            running_per_tenant[job.tenant_id] = running_per_tenant.get(job.tenant_id, 0) + 1
            ready.append(job)
        return ready

    def next_retry_time(self) -> Optional[float]:
        """Earliest ``next_retry_at`` among queued jobs (``None`` if none)."""
        times = [job.next_retry_at for job in self.store.list(status=QUEUED)]
        return min(times) if times else None

    # ------------------------------------------------------------------ #
    # Dead-letter queue
    # ------------------------------------------------------------------ #
    def dead_letter_jobs(self) -> List[IngestionJob]:
        """The dead-letter queue, in submission order."""
        return self.store.list(status=DEAD_LETTER)

    def requeue_from_dlq(self, job_id: str, now: float = 0.0) -> IngestionJob:
        """Give a dead-lettered job a fresh lease: requeue with zero retries.

        The retry budget and backoff clock reset (the operator presumably
        fixed the underlying cause); the error classification of the last
        failure stays in the history rows for the audit trail.
        """
        job = self.store.get(job_id)
        if job.status != DEAD_LETTER:
            raise ConfigurationError(
                f"job {job_id} is {job.status!r}, not {DEAD_LETTER!r}; only "
                "dead-lettered jobs can be requeued"
            )
        job.transition(QUEUED, now, detail="requeued from DLQ")
        job.retry_count = 0
        job.next_retry_at = 0.0
        job.error_code = None
        job.error_message = None
        job.finished_at = None
        self.store.update(job)
        return job

    def list_jobs(
        self, status: Optional[str] = None, tenant_id: Optional[str] = None
    ) -> List[IngestionJob]:
        """Jobs in submission order, optionally filtered (CLI ``status``)."""
        return self.store.list(status=status, tenant_id=tenant_id)
