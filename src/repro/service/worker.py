"""The shard worker: one fleet engine per process, batches in, outcomes out.

A worker owns one shard of the fleet.  The parent service sends it batches
of job assignments over an inbox queue; for each batch the worker builds the
sub-scenario of exactly those streams, runs them jointly through **one**
:class:`~repro.core.fleet.FleetEngine` on the shard's own cluster (sharding
scales capacity out: N shards = N clusters), charges the shared cross-shard
ledger, and reports one :class:`JobOutcome` per job on the results queue.

Workers are deliberately *stateless executors*: all job lifecycle state
lives in the parent's job store, so a SIGKILLed worker loses nothing but
the batch in flight — which the parent detects and requeues onto the
surviving shards.  Failure isolation inside a batch: per-job injected
faults and per-job construction errors fail only that job; an engine-level
error fails the whole batch (the streams ran jointly), classified for the
retry policy.
"""

from __future__ import annotations

import queue
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.experiments.runner import ExperimentRunner, SystemBundle
from repro.registry import adaptive_system_name
from repro.service.jobs import InjectedFaultError, classify_error
from repro.service.ledger import SharedDailyLedger
from repro.workloads.fleet import FleetScenario

#: Message kinds on the worker inbox / results queues.
MSG_BATCH = "batch"
MSG_STOP = "stop"
MSG_BATCH_DONE = "batch_done"


@dataclass(frozen=True)
class JobAssignment:
    """What a worker needs to run one job of a batch (picklable, tiny)."""

    job_id: str
    stream_id: str
    attempt: int  # 1-based dispatch count, drives injected faults
    inject_failures: int = 0
    system: Optional[str] = None


@dataclass
class JobOutcome:
    """One job's result reported back to the parent service."""

    job_id: str
    ok: bool
    error_code: Optional[str] = None
    error_message: Optional[str] = None
    metrics: Dict[str, float] = field(default_factory=dict)
    lags: Optional[List[float]] = None


@dataclass(frozen=True)
class WorkerConfig:
    """Per-shard execution knobs, fixed at worker spawn."""

    shard_id: int
    system: str = "static"
    scheduler: str = "fifo"
    cores: int = 8
    buffer_bytes: Optional[int] = None
    cloud_budget_per_day: Optional[float] = None
    collect_lags: bool = False
    #: Upgrade every stream's system to its drift-adaptive variant (streams
    #: whose system has no adaptive variant run unchanged).
    adaptive: bool = False


def run_batch(
    runner: ExperimentRunner,
    scenario: FleetScenario,
    ledger: SharedDailyLedger,
    config: WorkerConfig,
    batch: List[JobAssignment],
    tenant_ledgers: Optional[Dict[str, object]] = None,
) -> List[JobOutcome]:
    """Execute one batch of assignments through one joint fleet run.

    ``tenant_ledgers`` maps tenant ids to per-tenant budget ledgers (the
    deployed fleet plan's sub-budgets); streams of mapped tenants charge
    their tenant's capped ledger instead of the shard-wide shared one.
    """
    outcomes: List[JobOutcome] = []
    live: List[JobAssignment] = []
    for assignment in batch:
        if assignment.attempt <= assignment.inject_failures:
            error = InjectedFaultError(
                f"injected fault on attempt {assignment.attempt} of "
                f"{assignment.inject_failures}"
            )
            outcomes.append(
                JobOutcome(
                    job_id=assignment.job_id,
                    ok=False,
                    error_code=classify_error(error),
                    error_message=str(error),
                )
            )
        else:
            live.append(assignment)
    if not live:
        return outcomes

    sub = scenario.subset([assignment.stream_id for assignment in live])
    # A job-level system override wins over the scenario spec's.
    overrides = {a.stream_id: a.system for a in live if a.system is not None}
    if overrides:
        sub.streams = [
            replace(spec, system=overrides.get(spec.stream_id, spec.system))
            for spec in sub.streams
        ]
    default_system = config.system
    if config.adaptive:
        default_system = adaptive_system_name(default_system)
        sub.streams = [
            replace(spec, system=adaptive_system_name(spec.system))
            if spec.system is not None
            else spec
            for spec in sub.streams
        ]
    try:
        result = runner.run_fleet(
            default_system,
            scenario=sub,
            scheduler=config.scheduler,
            cores=config.cores,
            buffer_bytes=config.buffer_bytes,
            cloud_budget_per_day=config.cloud_budget_per_day,
            keep_traces=config.collect_lags,
            ledger=ledger,
            tenant_ledgers=tenant_ledgers,
        )
    except Exception as error:  # engine-level failure fails the whole batch
        code = classify_error(error)
        message = f"{type(error).__name__}: {error}"
        for assignment in live:
            outcomes.append(
                JobOutcome(
                    job_id=assignment.job_id,
                    ok=False,
                    error_code=code,
                    error_message=message,
                )
            )
        return outcomes

    for assignment in live:
        stream_result = result.stream_results[assignment.stream_id]
        processed = stream_result.segments_total - stream_result.segments_dropped
        metrics = {
            "segments_total": float(stream_result.segments_total),
            "segments_dropped": float(stream_result.segments_dropped),
            "quality": (
                stream_result.total_true_quality / stream_result.segments_total
                if stream_result.segments_total
                else 0.0
            ),
            "cloud_dollars": stream_result.cloud_dollars,
            "mean_lag_s": (
                stream_result.total_lag_seconds / processed if processed else 0.0
            ),
            "max_lag_s": stream_result.max_lag_seconds,
        }
        # Adaptive policies report drift/re-fit counters; ordinary policies
        # report nothing, keeping legacy outcome payloads byte-identical.
        metrics.update(stream_result.policy_metrics)
        lags = None
        if config.collect_lags:
            lags = [
                trace.start_time - trace.arrival_time
                for trace in stream_result.traces
                if not trace.dropped
            ]
        outcomes.append(
            JobOutcome(
                job_id=assignment.job_id, ok=True, metrics=metrics, lags=lags
            )
        )
    return outcomes


def worker_main(
    config: WorkerConfig,
    bundle: SystemBundle,
    scenario: FleetScenario,
    ledger: SharedDailyLedger,
    inbox: "queue.Queue",
    results: "queue.Queue",
    tenant_ledgers: Optional[Dict[str, object]] = None,
) -> None:
    """Worker process entry point: serve batches until ``stop`` (or EOF).

    ``tenant_ledgers`` (per-tenant capped sub-ledgers of ``ledger``, built
    from a fleet plan) must be picklable shared-memory ledgers — every
    shard enforces the same tenant caps.
    """
    runner = ExperimentRunner(bundle)
    while True:
        try:
            message = inbox.get()
        except (EOFError, OSError):  # parent went away
            return
        if message[0] == MSG_STOP:
            return
        _, batch_id, batch = message
        outcomes = run_batch(
            runner, scenario, ledger, config, batch, tenant_ledgers=tenant_ledgers
        )
        results.put((MSG_BATCH_DONE, config.shard_id, batch_id, outcomes))
