"""Consistent-hash assignment of streams to shard workers.

The :class:`ShardRing` hashes each shard id onto a ring many times (virtual
nodes) and assigns a stream to the first shard clockwise of the stream's own
hash.  Two properties matter to the service:

* **determinism** — assignment depends only on the ring membership and the
  stream id, so a retried job lands on the same shard as long as that shard
  is alive (locality for any per-shard warm state);
* **minimal remapping** — removing a dead shard only moves the streams that
  were on it; every other stream keeps its shard, so one worker crash does
  not reshuffle the whole fleet.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


def _ring_hash(key: str) -> int:
    """A stable 64-bit position on the ring (md5, not Python's salted hash)."""
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class ShardRing:
    """A consistent-hash ring mapping stream ids to shard ids.

    Args:
        shard_ids: the member shards (any hashable ints).
        replicas: virtual nodes per shard; more replicas smooth the load
            split at the cost of a larger (still tiny) ring.
    """

    def __init__(self, shard_ids: Sequence[int], replicas: int = 64):
        if not shard_ids:
            raise ConfigurationError("a shard ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ConfigurationError("duplicate shard ids in ring")
        if replicas < 1:
            raise ConfigurationError("replicas must be positive")
        self.replicas = replicas
        self.shard_ids: Tuple[int, ...] = tuple(shard_ids)
        points: List[Tuple[int, int]] = []
        for shard in self.shard_ids:
            for replica in range(replicas):
                points.append((_ring_hash(f"shard-{shard}:{replica}"), shard))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self.shard_ids

    def assign(self, stream_id: str) -> int:
        """The shard owning ``stream_id`` (first ring point clockwise)."""
        position = bisect.bisect(self._hashes, _ring_hash(str(stream_id)))
        if position == len(self._hashes):
            position = 0
        return self._shards[position]

    def without(self, shard_id: int) -> "ShardRing":
        """A new ring with ``shard_id`` removed (crash recovery rehash)."""
        if shard_id not in self.shard_ids:
            raise ConfigurationError(f"shard {shard_id} is not in the ring")
        remaining = [shard for shard in self.shard_ids if shard != shard_id]
        if not remaining:
            raise ConfigurationError("cannot remove the last shard from the ring")
        return ShardRing(remaining, replicas=self.replicas)

    def assignment_counts(self, stream_ids: Sequence[str]) -> Dict[int, int]:
        """How many of ``stream_ids`` each shard owns (balance diagnostics)."""
        counts = {shard: 0 for shard in self.shard_ids}
        for stream_id in stream_ids:
            counts[self.assign(stream_id)] += 1
        return counts
