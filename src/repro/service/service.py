"""The fleet ingestion service: sharded workers over one job lifecycle.

:class:`FleetIngestionService` is the parent orchestrator that ties the
subsystem together: jobs submitted through the :class:`~repro.service
.dispatcher.JobDispatcher` are consistent-hashed onto shard worker
processes (:mod:`repro.service.shards`), each worker runs its batch jointly
through one :class:`~repro.core.fleet.FleetEngine` on its own cluster
(:mod:`repro.service.worker`), and every shard charges the one
multiprocessing-safe :class:`~repro.service.ledger.SharedDailyLedger`.

The parent is the single writer of job state: it marks jobs ``running`` at
dispatch, applies worker outcomes (``success`` / ``failed`` with bounded
exponential-backoff-and-jitter retries / ``dead_letter``), and — the crash
path — detects a dead worker process, requeues its in-flight jobs with a
``worker_crash`` classification, removes the shard from the hash ring, and
lets the surviving shards drain the fleet.  Budget accounting survives the
crash for free: spend lives in the parent-owned shared ledger, so whatever
a killed worker charged before dying stays recorded.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.experiments.results import jain_fairness_index
from repro.experiments.runner import SystemBundle
from repro.planning.admission import AdmissionController
from repro.planning.allocation import FleetPlan, build_tenant_ledgers
from repro.planning.demand import build_problem_from_skyscraper, derive_tenant_specs
from repro.planning.solvers import make_planner
from repro.planning.tenants import TenantSpec
from repro.service.dispatcher import JobDispatcher, TenantQuota
from repro.service.jobs import (
    DEAD_LETTER,
    FAILED,
    QUEUED,
    RUNNING,
    SUCCESS,
    IngestionJob,
    InMemoryJobStore,
    JobStore,
    is_retryable,
)
from repro.service.ledger import SharedDailyLedger
from repro.service.shards import ShardRing
from repro.service.worker import (
    MSG_BATCH,
    MSG_BATCH_DONE,
    MSG_STOP,
    JobAssignment,
    JobOutcome,
    WorkerConfig,
    worker_main,
)
from repro.workloads.fleet import FleetScenario, make_fleet_scenario


class ServiceError(ReproError):
    """Raised when the service cannot make progress (e.g. all workers died)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    The delay for retry *k* (1-based) is ``base · 2^(k-1)`` capped at
    ``max_delay``, stretched by up to ``jitter_fraction`` using a PRNG
    seeded from the job id and retry count — retries of a burst of failed
    jobs de-synchronize, but every schedule is reproducible.
    """

    max_retries: int = 3
    base_delay_seconds: float = 0.05
    max_delay_seconds: float = 2.0
    jitter_fraction: float = 0.25

    def backoff_seconds(self, retry_count: int, key: str = "") -> float:
        """Delay before retry number ``retry_count`` of job ``key``."""
        if retry_count < 1:
            raise ConfigurationError("retry_count is 1-based")
        delay = min(
            self.base_delay_seconds * (2 ** (retry_count - 1)),
            self.max_delay_seconds,
        )
        rng = random.Random(f"{key}:{retry_count}")
        return delay * (1.0 + self.jitter_fraction * rng.random())


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs: shard count, per-shard hardware, retry policy.

    ``planner`` names a registered fleet planner
    (:func:`repro.planning.planner_names`); when set, ``submit_fleet``
    solves a joint budget/core allocation over the scenario's tenants,
    rejects SLO-infeasible tenants at admission, and ``run`` enforces the
    resulting per-tenant sub-budgets on every shard.
    """

    n_shards: int = 2
    system: str = "static"
    scheduler: str = "fifo"
    cores_per_shard: int = 8
    buffer_bytes: Optional[int] = None
    cloud_budget_per_day: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    collect_lags: bool = False
    #: Run every stream under its drift-adaptive system variant (see
    #: :func:`repro.registry.adaptive_system_name`); workers then surface
    #: drift-trigger/re-fit counters in each job outcome's metrics.
    adaptive: bool = False
    max_batch_size: Optional[int] = None
    poll_seconds: float = 0.01
    ledger_horizon_days: int = 4096
    planner: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError("n_shards must be positive")
        if self.cores_per_shard < 1:
            raise ConfigurationError("cores_per_shard must be positive")


@dataclass
class ShardStats:
    """Per-shard accounting for the service report."""

    shard: int
    batches: int = 0
    jobs_succeeded: int = 0
    jobs_failed: int = 0
    segments_total: int = 0
    segments_dropped: int = 0
    crashed: bool = False
    served_fractions: List[float] = field(default_factory=list)

    @property
    def jain_fairness(self) -> float:
        """Jain's index over the served fractions of this shard's streams."""
        return jain_fairness_index(self.served_fractions)

    def as_dict(self) -> Dict[str, Any]:
        """Flat row for tables and the BENCH json."""
        return {
            "shard": self.shard,
            "batches": self.batches,
            "jobs_succeeded": self.jobs_succeeded,
            "jobs_failed": self.jobs_failed,
            "segments": self.segments_total,
            "dropped": self.segments_dropped,
            "jain_fairness": round(self.jain_fairness, 4),
            "crashed": self.crashed,
        }


@dataclass
class ServiceReport:
    """Aggregate outcome of one service drain (the ``run()`` return value)."""

    wall_seconds: float
    counts: Dict[str, int]
    segments_total: int
    segments_dropped: int
    cloud_total_dollars: float
    cloud_spend_by_day: Dict[int, float]
    shard_stats: List[ShardStats]
    crashed_shards: List[int]
    dead_letter: List[Dict[str, Any]]
    lag_samples: List[float] = field(default_factory=list)
    jain_fairness: float = 1.0
    planner: Optional[str] = None
    plan: Optional[Dict[str, Any]] = None
    rejected_tenants: List[Dict[str, str]] = field(default_factory=list)
    tenant_spend: Dict[str, float] = field(default_factory=dict)

    @property
    def drop_rate(self) -> float:
        """Dropped segments as a fraction of all arrived segments."""
        if self.segments_total == 0:
            return 0.0
        return self.segments_dropped / self.segments_total

    def lag_percentile(self, fraction: float) -> float:
        """Lag at ``fraction`` (e.g. 0.99) of the pooled per-segment lags."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("percentile fraction must be in [0, 1]")
        if not self.lag_samples:
            return 0.0
        ordered = sorted(self.lag_samples)
        index = min(int(fraction * len(ordered)), len(ordered) - 1)
        return ordered[index]

    @property
    def p99_lag_seconds(self) -> float:
        """99th-percentile ingestion lag across every processed segment."""
        return self.lag_percentile(0.99)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (CLI ``--json`` and BENCH payloads)."""
        return {
            "wall_seconds": round(self.wall_seconds, 3),
            "counts": dict(self.counts),
            "segments_total": self.segments_total,
            "segments_dropped": self.segments_dropped,
            "drop_rate": round(self.drop_rate, 4),
            "p99_lag_s": round(self.p99_lag_seconds, 3),
            "jain_fairness": round(self.jain_fairness, 4),
            "cloud_total_dollars": round(self.cloud_total_dollars, 6),
            "cloud_spend_by_day": {
                str(day): round(value, 6)
                for day, value in sorted(self.cloud_spend_by_day.items())
            },
            "shards": [stats.as_dict() for stats in self.shard_stats],
            "crashed_shards": list(self.crashed_shards),
            "dead_letter": list(self.dead_letter),
            "planner": self.planner,
            "plan": self.plan,
            "rejected_tenants": list(self.rejected_tenants),
            "tenant_spend": {
                tenant: round(dollars, 6)
                for tenant, dollars in sorted(self.tenant_spend.items())
            },
        }


@dataclass
class _WorkerHandle:
    process: multiprocessing.Process
    inbox: Any
    alive: bool = True
    batches_sent: int = 0


class FleetIngestionService:
    """Sharded, fault-tolerant ingestion of a fleet scenario.

    Args:
        bundle: the fitted workload bundle every shard executes against.
        config: service knobs (:class:`ServiceConfig`).
        store: job persistence (defaults to in-memory; pass a
            :class:`~repro.service.jobs.JsonFileJobStore` to compose with
            the CLI across processes).
        quotas: per-tenant admission/isolation caps.
        tenant_specs: per-tenant planning overrides (weight, ``min_quality``
            SLO, cost ratio, forecast), keyed by tenant id — consulted when
            ``config.planner`` is set; stream counts always come from the
            submitted scenario.

    Typical use::

        service = FleetIngestionService(bundle, ServiceConfig(n_shards=4))
        service.submit_fleet(n_streams=64)
        report = service.run()
    """

    def __init__(
        self,
        bundle: SystemBundle,
        config: ServiceConfig = ServiceConfig(),
        store: Optional[JobStore] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        tenant_specs: Optional[Dict[str, TenantSpec]] = None,
    ):
        self.bundle = bundle
        self.config = config
        self.store = store if store is not None else InMemoryJobStore()
        self.dispatcher = JobDispatcher(self.store, quotas=quotas)
        self.scenario: Optional[FleetScenario] = None
        self.tenant_specs = dict(tenant_specs or {})
        self.fleet_plan: Optional[FleetPlan] = None
        self.tenant_ledgers: Optional[Dict[str, Any]] = None
        budget = (
            config.cloud_budget_per_day
            if config.cloud_budget_per_day is not None
            else bundle.config.cloud_budget_per_day
        )
        self.ledger = SharedDailyLedger(
            budget,
            base_day=SharedDailyLedger.day_of(bundle.config.online_start),
            horizon_days=config.ledger_horizon_days,
        )

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def attach_scenario(self, scenario: FleetScenario) -> None:
        """Bind the fleet scenario jobs refer to (validated at ``run``)."""
        if scenario.base.workload is not self.bundle.setup.workload:
            raise ConfigurationError(
                "the scenario was built from a different workload setup than "
                "this service's bundle; build it with "
                "make_fleet_scenario(bundle.setup, ...)"
            )
        self.scenario = scenario

    def submit_fleet(
        self,
        n_streams: Optional[int] = None,
        scenario: Optional[FleetScenario] = None,
        phase_shift_seconds: float = 60.0,
        heterogeneous: bool = False,
        tenants: Optional[List[str]] = None,
        max_retries: Optional[int] = None,
        inject_failures: Optional[Dict[str, int]] = None,
        now: Optional[float] = None,
    ) -> List[IngestionJob]:
        """Submit one job per stream of a fleet (building the scenario if needed).

        Args:
            n_streams: size of the generated scenario (exclusive with
                ``scenario``).
            scenario: an explicit fleet scenario to ingest.
            phase_shift_seconds: per-camera content offset of the generated
                scenario.
            heterogeneous: re-seed every generated camera.
            tenants: tenant ids assigned round-robin to generated streams.
            max_retries: per-job retry bound (defaults to the retry policy's).
            inject_failures: ``stream_id -> N`` fault injection — fail the
                first N attempts of those jobs (tests and the CI smoke).
            now: submission timestamp (defaults to ``time.time()``).
        """
        if (n_streams is None) == (scenario is None):
            raise ConfigurationError("pass exactly one of n_streams= or scenario=")
        if scenario is None:
            scenario = make_fleet_scenario(
                self.bundle.setup,
                n_streams,
                phase_shift_seconds=phase_shift_seconds,
                heterogeneous=heterogeneous,
                tenants=tenants,
            )
        self.attach_scenario(scenario)
        if self.config.planner is not None:
            self._plan_fleet(scenario)
        submitted_at = time.time() if now is None else now
        retries = self.config.retry.max_retries if max_retries is None else max_retries
        injections = inject_failures or {}
        unknown = set(injections) - set(scenario.stream_ids())
        if unknown:
            raise ConfigurationError(
                f"inject_failures names unknown streams: {sorted(unknown)}"
            )
        rejected = self.fleet_plan.rejected if self.fleet_plan is not None else {}
        jobs = []
        for index, spec in enumerate(scenario.streams):
            if spec.tenant in rejected:
                # The admission hook would raise; rejected tenants simply
                # get no jobs, and the rejection (with reason) lands in the
                # service report.
                continue
            jobs.append(
                self.dispatcher.submit(
                    stream_id=spec.stream_id,
                    stream_index=index,
                    tenant_id=spec.tenant,
                    system=spec.system,
                    max_retries=retries,
                    inject_failures=injections.get(spec.stream_id, 0),
                    now=submitted_at,
                )
            )
        return jobs

    # ------------------------------------------------------------------ #
    # Joint planning and admission
    # ------------------------------------------------------------------ #
    def _plan_fleet(self, scenario: FleetScenario) -> None:
        """Solve the joint allocation over the scenario's tenants.

        Builds the planning problem from the bundle's fitted system (stream
        counts observed from the scenario, weights/SLOs/cost-ratios from
        ``tenant_specs``), rejects SLO-infeasible tenants, installs the
        admission hook on the dispatcher, and keeps the winning plan for
        ``run`` to deploy as per-tenant sub-budgets.
        """
        budget = self.ledger.daily_budget_dollars
        if budget is None:
            raise ConfigurationError(
                "a fleet planner needs a finite cloud budget; set "
                "cloud_budget_per_day on the service or bundle config"
            )
        counts: Dict[str, int] = {}
        for spec in scenario.streams:
            counts[spec.tenant] = counts.get(spec.tenant, 0) + 1
        tenants = derive_tenant_specs(counts, overrides=self.tenant_specs)
        problem = build_problem_from_skyscraper(
            self.bundle.skyscraper,
            tenants,
            cloud_budget_per_day=budget,
            cores=self.config.cores_per_shard * self.config.n_shards,
            segment_seconds=self.bundle.setup.source.segment_seconds,
        )
        controller = AdmissionController(problem)
        rejected = controller.rejections()
        self.dispatcher.admission = controller.check
        admitted = [
            spec.tenant_id
            for spec in problem.tenants
            if spec.tenant_id not in rejected
        ]
        if not admitted:
            raise ConfigurationError(
                "admission control rejected every tenant: "
                + "; ".join(f"{k}: {v}" for k, v in sorted(rejected.items()))
            )
        admitted_problem = (
            problem if not rejected else problem.restricted(admitted)
        )
        plan = make_planner(self.config.planner).plan(admitted_problem)
        plan.rejected = dict(rejected)
        self.fleet_plan = plan
        self.tenant_ledgers = build_tenant_ledgers(
            plan,
            self.ledger,
            tracker_factory=lambda cap: SharedDailyLedger(
                cap,
                base_day=self.ledger.base_day,
                horizon_days=self.ledger.horizon_days,
            ),
        )

    # ------------------------------------------------------------------ #
    # The drain loop
    # ------------------------------------------------------------------ #
    def run(
        self,
        crash_shard: Optional[int] = None,
        crash_on_batch: int = 1,
        timeout_seconds: float = 600.0,
    ) -> ServiceReport:
        """Drain every pending job to ``success`` or ``dead_letter``.

        Spawns ``n_shards`` worker processes, dispatches ready jobs in
        shard-grouped batches, applies outcomes (with retry backoff), and
        recovers from worker deaths by requeueing their in-flight jobs onto
        the surviving shards.  Returns the aggregate :class:`ServiceReport`.

        Args:
            crash_shard: fault injection — SIGKILL this shard's worker
                right after its ``crash_on_batch``-th batch is dispatched,
                exercising the crash-recovery path deterministically.
            crash_on_batch: which dispatch to kill on (1-based).
            timeout_seconds: hard wall-clock bound on the drain.
        """
        pending = [job for job in self.store.list() if not job.terminal]
        started = time.time()
        if not pending:
            return self._report(wall_seconds=0.0, stats={}, crashed=[], lags=[])
        if self.scenario is None:
            raise ConfigurationError(
                "no fleet scenario attached; call submit_fleet() or "
                "attach_scenario() before run()"
            )
        known = set(self.scenario.stream_ids())
        for job in pending:
            if job.stream_id not in known:
                raise ConfigurationError(
                    f"job {job.job_id} refers to stream {job.stream_id!r} "
                    "which is not in the attached scenario"
                )
        stuck = [job for job in pending if job.status in (RUNNING, FAILED)]
        for job in stuck:  # a previous run died mid-flight; give a fresh lease
            if job.status == RUNNING:
                job.transition(FAILED, started, detail="stale lease")
            job.transition(QUEUED, started, detail="recovered stale state")
            self.store.update(job)

        context = multiprocessing.get_context()
        results: Any = context.Queue()
        workers: Dict[int, _WorkerHandle] = {}
        for shard in range(self.config.n_shards):
            inbox = context.Queue()
            worker_config = WorkerConfig(
                shard_id=shard,
                system=self.config.system,
                scheduler=self.config.scheduler,
                cores=self.config.cores_per_shard,
                buffer_bytes=self.config.buffer_bytes,
                cloud_budget_per_day=self.config.cloud_budget_per_day,
                collect_lags=self.config.collect_lags,
                adaptive=self.config.adaptive,
            )
            process = context.Process(
                target=worker_main,
                args=(
                    worker_config,
                    self.bundle,
                    self.scenario,
                    self.ledger,
                    inbox,
                    results,
                    self.tenant_ledgers,
                ),
                daemon=True,
                name=f"fleet-shard-{shard}",
            )
            process.start()
            workers[shard] = _WorkerHandle(process=process, inbox=inbox)

        ring = ShardRing(list(workers))
        in_flight: Dict[int, List[str]] = {}
        stats = {shard: ShardStats(shard=shard) for shard in workers}
        lags: List[float] = []
        batch_seq = 0

        try:
            while True:
                progressed = self._apply_results(results, in_flight, stats, lags)
                ring, recovered = self._recover_crashes(workers, in_flight, ring, stats)
                progressed |= recovered
                if not any(not job.terminal for job in self.store.list()):
                    break
                now = time.time()
                if now - started > timeout_seconds:
                    raise ServiceError(
                        f"service did not drain within {timeout_seconds:.0f}s "
                        f"({self.store.counts()})"
                    )
                dispatched = self._dispatch_wave(
                    workers, ring, in_flight, stats, now, crash_shard, crash_on_batch,
                    batch_seq,
                )
                batch_seq += dispatched
                if not progressed and not dispatched:
                    time.sleep(self.config.poll_seconds)
        finally:
            for handle in workers.values():
                if handle.alive and handle.process.is_alive():
                    try:
                        handle.inbox.put((MSG_STOP,))
                    except (OSError, ValueError):
                        pass
            for handle in workers.values():
                handle.process.join(timeout=2.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=2.0)

        crashed = [shard for shard, s in stats.items() if s.crashed]
        return self._report(
            wall_seconds=time.time() - started,
            stats=stats,
            crashed=crashed,
            lags=lags,
        )

    # ------------------------------------------------------------------ #
    # Drain-loop helpers (parent is the single writer of job state)
    # ------------------------------------------------------------------ #
    def _apply_results(
        self,
        results: Any,
        in_flight: Dict[int, List[str]],
        stats: Dict[int, ShardStats],
        lags: List[float],
    ) -> bool:
        """Drain the results queue; returns whether anything was applied."""
        progressed = False
        while True:
            try:
                message = results.get_nowait()
            except queue.Empty:
                return progressed
            kind, shard, _batch_id, outcomes = message
            assert kind == MSG_BATCH_DONE, kind
            in_flight.pop(shard, None)
            now = time.time()
            for outcome in outcomes:
                self._apply_outcome(outcome, shard, stats, lags, now)
            progressed = True

    def _apply_outcome(
        self,
        outcome: JobOutcome,
        shard: int,
        stats: Dict[int, ShardStats],
        lags: List[float],
        now: float,
    ) -> None:
        job = self.store.get(outcome.job_id)
        shard_stats = stats[shard]
        if outcome.ok:
            job.transition(SUCCESS, now, detail=f"shard {shard}")
            job.metrics = dict(outcome.metrics)
            job.error_code = None
            job.error_message = None
            self.store.update(job)
            shard_stats.jobs_succeeded += 1
            total = int(outcome.metrics.get("segments_total", 0))
            dropped = int(outcome.metrics.get("segments_dropped", 0))
            shard_stats.segments_total += total
            shard_stats.segments_dropped += dropped
            shard_stats.served_fractions.append(
                (total - dropped) / total if total else 0.0
            )
            if outcome.lags:
                lags.extend(outcome.lags)
        else:
            shard_stats.jobs_failed += 1
            self._fail_job(
                job, outcome.error_code or "runtime", outcome.error_message or "", now
            )

    def _fail_job(self, job: IngestionJob, code: str, message: str, now: float) -> None:
        """Apply one failure: retry with backoff or dead-letter."""
        job.transition(FAILED, now, detail=f"{code}: {message[:160]}")
        job.error_code = code
        job.error_message = message
        if not is_retryable(code):
            job.transition(DEAD_LETTER, now, detail=f"non-retryable {code!r}")
        elif job.retry_count >= job.max_retries:
            job.transition(
                DEAD_LETTER, now, detail=f"retries exhausted ({job.max_retries})"
            )
        else:
            job.retry_count += 1
            delay = self.config.retry.backoff_seconds(job.retry_count, key=job.job_id)
            job.next_retry_at = now + delay
            job.transition(
                QUEUED, now, detail=f"retry {job.retry_count}/{job.max_retries} in {delay:.3f}s"
            )
        self.store.update(job)

    def _recover_crashes(
        self,
        workers: Dict[int, _WorkerHandle],
        in_flight: Dict[int, List[str]],
        ring: ShardRing,
        stats: Dict[int, ShardStats],
    ) -> "Tuple[ShardRing, bool]":
        """Detect dead workers, requeue their running jobs, shrink the ring.

        Returns the (possibly rebuilt) ring and whether anything happened.
        """
        progressed = False
        for shard, handle in workers.items():
            if not handle.alive or handle.process.is_alive():
                continue
            handle.alive = False
            stats[shard].crashed = True
            job_ids = in_flight.pop(shard, [])
            now = time.time()
            for job_id in job_ids:
                job = self.store.get(job_id)
                stats[shard].jobs_failed += 1
                self._fail_job(
                    job,
                    "worker_crash",
                    f"shard {shard} worker died with jobs in flight",
                    now,
                )
            survivors = [s for s, h in workers.items() if h.alive]
            if not survivors:
                if any(not job.terminal for job in self.store.list()):
                    raise ServiceError(
                        "every shard worker died with jobs still pending"
                    )
            elif shard in ring:
                ring = ring.without(shard)
            progressed = True
        return ring, progressed

    def _dispatch_wave(
        self,
        workers: Dict[int, _WorkerHandle],
        ring: ShardRing,
        in_flight: Dict[int, List[str]],
        stats: Dict[int, ShardStats],
        now: float,
        crash_shard: Optional[int],
        crash_on_batch: int,
        batch_seq: int,
    ) -> int:
        """Send one batch per idle shard from the ready queue; returns #batches."""
        ready = self.dispatcher.ready_jobs(now)
        if not ready:
            return 0
        by_shard: Dict[int, List[IngestionJob]] = {}
        for job in ready:
            shard = ring.assign(job.stream_id)
            if not workers[shard].alive or shard in in_flight:
                continue  # shard busy or dead: the job waits for the next wave
            by_shard.setdefault(shard, []).append(job)
        dispatched = 0
        for shard, jobs in by_shard.items():
            if self.config.max_batch_size is not None:
                jobs = jobs[: self.config.max_batch_size]
            handle = workers[shard]
            assignments = []
            for job in jobs:
                job.attempts += 1
                job.shard = shard
                job.transition(
                    RUNNING, now, detail=f"shard {shard}, attempt {job.attempts}"
                )
                self.store.update(job)
                assignments.append(
                    JobAssignment(
                        job_id=job.job_id,
                        stream_id=job.stream_id,
                        attempt=job.attempts,
                        inject_failures=job.inject_failures,
                        system=job.system,
                    )
                )
            dispatched += 1
            handle.inbox.put((MSG_BATCH, batch_seq + dispatched, assignments))
            handle.batches_sent += 1
            stats[shard].batches += 1
            in_flight[shard] = [assignment.job_id for assignment in assignments]
            if crash_shard == shard and handle.batches_sent == crash_on_batch:
                # Fault injection: the worker dies with the batch in flight.
                os.kill(handle.process.pid, signal.SIGKILL)
                handle.process.join(timeout=5.0)
        return dispatched

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def _report(
        self,
        wall_seconds: float,
        stats: Dict[int, ShardStats],
        crashed: List[int],
        lags: List[float],
    ) -> ServiceReport:
        shard_stats = [stats[shard] for shard in sorted(stats)]
        served = [
            fraction for s in shard_stats for fraction in s.served_fractions
        ]
        return ServiceReport(
            wall_seconds=wall_seconds,
            counts=self.store.counts(),
            segments_total=sum(s.segments_total for s in shard_stats),
            segments_dropped=sum(s.segments_dropped for s in shard_stats),
            cloud_total_dollars=self.ledger.total_dollars,
            cloud_spend_by_day=self.ledger.spend_by_day,
            shard_stats=shard_stats,
            crashed_shards=crashed,
            dead_letter=[
                {
                    "job_id": job.job_id,
                    "stream_id": job.stream_id,
                    "tenant_id": job.tenant_id,
                    "error_code": job.error_code,
                    "retry_count": job.retry_count,
                }
                for job in self.dispatcher.dead_letter_jobs()
            ],
            lag_samples=lags,
            jain_fairness=jain_fairness_index(served),
            planner=self.config.planner,
            plan=(
                self.fleet_plan.as_dict() if self.fleet_plan is not None else None
            ),
            rejected_tenants=(
                [
                    {"tenant_id": tenant, "reason": reason}
                    for tenant, reason in sorted(self.fleet_plan.rejected.items())
                ]
                if self.fleet_plan is not None
                else []
            ),
            tenant_spend=(
                {
                    tenant: ledger.total_dollars
                    for tenant, ledger in self.tenant_ledgers.items()
                }
                if self.tenant_ledgers is not None
                else {}
            ),
        )
