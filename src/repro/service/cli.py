"""Command-line front end of the fleet ingestion service.

Subcommands (``python -m repro.service <cmd>``):

* ``run`` — drain a fleet through sharded workers, either ephemerally
  (``--workload/--streams``) or from a JSON job store (``--store``);
  prints the job table, the shard table, and a machine-readable
  ``BENCH {...}`` line.  ``--inject-crash-shard`` SIGKILLs one worker
  mid-run to exercise crash recovery (the CI smoke job uses this).
* ``submit`` — append queued jobs to a JSON store for a later ``run``.
* ``status`` — job counts, per-tenant breakdown, and the dead-letter queue.
* ``requeue`` — give dead-lettered jobs a fresh lease (``--job-id``/``--all``).
* ``schedulers`` — list the registered fleet schedulers.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, Optional, Sequence

from repro.core.fleet import scheduler_names
from repro.errors import ConfigurationError
from repro.experiments.results import ExperimentTable
from repro.figures.context import BundleProvider, make_setup
from repro.planning.solvers import planner_names
from repro.service.dispatcher import JobDispatcher
from repro.service.jobs import DEAD_LETTER, JOB_STATES, JsonFileJobStore
from repro.service.service import (
    FleetIngestionService,
    RetryPolicy,
    ServiceConfig,
    ServiceReport,
)
from repro.workloads.fleet import make_fleet_scenario


def _parse_injections(spec: Optional[str]) -> Dict[str, int]:
    """Parse ``stream-id=N,stream-id=N`` fault-injection specs."""
    if not spec:
        return {}
    injections: Dict[str, int] = {}
    for part in spec.split(","):
        if "=" not in part:
            raise ConfigurationError(
                f"bad --inject-failures entry {part!r}; expected stream-id=N"
            )
        stream_id, _, count = part.partition("=")
        injections[stream_id.strip()] = int(count)
    return injections


def _print_report(report: ServiceReport, store_counts: Dict[str, int]) -> None:
    """Human-readable run summary: shard table, counts, DLQ."""
    table = ExperimentTable("shards")
    for stats in report.shard_stats:
        table.add_row(**stats.as_dict())
    print(table.render())
    summary = ExperimentTable("service run")
    summary.add_row(
        wall_s=round(report.wall_seconds, 3),
        segments=report.segments_total,
        drop_rate=round(report.drop_rate, 4),
        p99_lag_s=round(report.p99_lag_seconds, 3),
        jain_fairness=round(report.jain_fairness, 4),
        cloud_usd=round(report.cloud_total_dollars, 4),
        **store_counts,
    )
    print(summary.render())
    if report.dead_letter:
        dlq = ExperimentTable("dead-letter queue")
        for entry in report.dead_letter:
            dlq.add_row(**entry)
        print(dlq.render())


def _bundle_for(workload: str, smoke: bool):
    """A fitted bundle at the suite's standard windows for the mode."""
    return BundleProvider(smoke=smoke).bundle(workload)


def cmd_run(args: argparse.Namespace) -> int:
    """``run``: drain jobs through the sharded service and report."""
    config = ServiceConfig(
        n_shards=args.shards,
        system=args.system,
        scheduler=args.scheduler,
        cores_per_shard=args.cores,
        buffer_bytes=args.buffer_bytes,
        retry=RetryPolicy(max_retries=args.max_retries),
        collect_lags=True,
        planner=args.planner,
        adaptive=args.adaptive,
    )
    if args.store:
        store = JsonFileJobStore(args.store)
        if not store.meta:
            raise ConfigurationError(
                f"store {args.store} is empty; submit jobs first"
            )
        workload = store.meta["workload"]
        smoke = bool(store.meta.get("smoke", False))
        bundle = _bundle_for(workload, smoke)
        scenario = make_fleet_scenario(
            bundle.setup,
            int(store.meta["streams"]),
            phase_shift_seconds=float(store.meta.get("phase_shift_seconds", 60.0)),
            heterogeneous=bool(store.meta.get("heterogeneous", False)),
        )
        service = FleetIngestionService(bundle, config, store=store)
        service.attach_scenario(scenario)
    else:
        smoke = bool(args.smoke)
        bundle = _bundle_for(args.workload, smoke)
        service = FleetIngestionService(bundle, config)
        service.submit_fleet(
            n_streams=args.streams,
            phase_shift_seconds=args.phase_shift_seconds,
            tenants=args.tenants.split(",") if args.tenants else None,
            inject_failures=_parse_injections(args.inject_failures),
        )
    report = service.run(
        crash_shard=args.inject_crash_shard,
        crash_on_batch=args.crash_on_batch,
        timeout_seconds=args.timeout,
    )
    counts = service.store.counts()
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True))
    else:
        _print_report(report, counts)
    mode = "smoke" if smoke else "full"
    all_terminal = counts["success"] + counts["dead_letter"] == sum(counts.values())
    print(
        "BENCH "
        + json.dumps(
            {
                "benchmark": "fleet_service",
                "mode": mode,
                "status": "ok" if all_terminal else "error",
                **report.as_dict(),
            },
            sort_keys=True,
        )
    )
    return 0 if all_terminal else 1


def cmd_submit(args: argparse.Namespace) -> int:
    """``submit``: append queued jobs to a JSON store for a later run."""
    store = JsonFileJobStore(args.store)
    if store.meta and store.meta["workload"] != args.workload:
        raise ConfigurationError(
            f"store already holds {store.meta['workload']!r} jobs; one "
            "workload per store"
        )
    start = int(store.meta.get("streams", 0))
    total = start + args.streams
    # Building the scenario (no offline fit involved) yields the exact
    # stream ids a later `run` will rebuild for these indexes.
    provider = BundleProvider(smoke=args.smoke)
    setup = make_setup(args.workload, provider.history_days, provider.online_days)
    scenario = make_fleet_scenario(
        setup,
        total,
        phase_shift_seconds=args.phase_shift_seconds,
        tenants=args.tenants.split(",") if args.tenants else None,
    )
    dispatcher = JobDispatcher(store)
    now = time.time()
    for index in range(start, total):
        spec = scenario.streams[index]
        dispatcher.submit(
            stream_id=spec.stream_id,
            stream_index=index,
            tenant_id=args.tenant or spec.tenant,
            max_retries=args.max_retries,
            now=now,
        )
    store.set_meta(
        workload=args.workload,
        smoke=bool(args.smoke),
        streams=total,
        phase_shift_seconds=args.phase_shift_seconds,
        heterogeneous=False,
    )
    print(f"submitted {args.streams} jobs (store now {total} streams): {args.store}")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """``status``: job counts, tenants, and the dead-letter queue."""
    store = JsonFileJobStore(args.store)
    counts = store.counts()
    if args.json:
        print(json.dumps({"meta": store.meta, "counts": counts}, sort_keys=True))
        return 0
    table = ExperimentTable("job counts")
    table.add_row(**counts)
    print(table.render())
    tenants = sorted({job.tenant_id for job in store.list()})
    if len(tenants) > 1:
        tenant_table = ExperimentTable("per tenant")
        for tenant in tenants:
            row = {state: 0 for state in JOB_STATES}
            for job in store.list(tenant_id=tenant):
                row[job.status] += 1
            tenant_table.add_row(tenant=tenant, **row)
        print(tenant_table.render())
    dlq = store.list(status=DEAD_LETTER)
    if dlq:
        dlq_table = ExperimentTable("dead-letter queue")
        for job in dlq:
            dlq_table.add_row(
                job_id=job.job_id,
                stream_id=job.stream_id,
                tenant=job.tenant_id,
                error_code=job.error_code,
                retries=job.retry_count,
            )
        print(dlq_table.render())
    return 0


def cmd_requeue(args: argparse.Namespace) -> int:
    """``requeue``: move dead-lettered jobs back to the queue."""
    store = JsonFileJobStore(args.store)
    dispatcher = JobDispatcher(store)
    now = time.time()
    if args.all:
        job_ids = [job.job_id for job in store.list(status=DEAD_LETTER)]
    elif args.job_id:
        job_ids = [args.job_id]
    else:
        raise ConfigurationError("pass --job-id or --all")
    for job_id in job_ids:
        dispatcher.requeue_from_dlq(job_id, now=now)
    print(f"requeued {len(job_ids)} job(s) from the dead-letter queue")
    return 0


def cmd_schedulers(args: argparse.Namespace) -> int:
    """``schedulers``: list the registered fleet schedulers."""
    for name in scheduler_names():
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.service`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Sharded fleet ingestion service over the fleet engine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="drain jobs through sharded workers")
    run.add_argument("--workload", default="ev", help="workload for ephemeral runs")
    run.add_argument("--streams", type=int, default=8, help="fleet size (ephemeral)")
    run.add_argument("--store", default=None, help="JSON job store to drain instead")
    run.add_argument("--shards", type=int, default=2)
    run.add_argument("--system", default="static")
    run.add_argument("--scheduler", default="fifo")
    run.add_argument("--cores", type=int, default=8, help="cores per shard cluster")
    run.add_argument("--buffer-bytes", type=int, default=256_000_000)
    run.add_argument("--max-retries", type=int, default=3)
    run.add_argument("--phase-shift-seconds", type=float, default=60.0)
    run.add_argument("--tenants", default=None, help="comma list, round-robin")
    run.add_argument(
        "--planner",
        default=None,
        choices=planner_names(),
        help="joint fleet planner: allocate the shared budget/cores across "
        "tenants and enforce per-tenant sub-budgets",
    )
    run.add_argument(
        "--adaptive",
        action="store_true",
        help="run streams under their drift-adaptive system variant "
        "(CUSUM monitor + staged incremental re-fits)",
    )
    run.add_argument("--smoke", action="store_true", help="CI-sized windows")
    run.add_argument("--timeout", type=float, default=600.0)
    run.add_argument("--json", action="store_true", help="machine-readable report")
    run.add_argument(
        "--inject-failures",
        default=None,
        help="stream-id=N,...: fail the first N attempts of those jobs",
    )
    run.add_argument(
        "--inject-crash-shard",
        type=int,
        default=None,
        help="SIGKILL this shard's worker mid-run (crash-recovery smoke)",
    )
    run.add_argument("--crash-on-batch", type=int, default=1)
    run.set_defaults(func=cmd_run)

    submit = sub.add_parser("submit", help="queue jobs into a JSON store")
    submit.add_argument("--store", required=True)
    submit.add_argument("--workload", default="ev")
    submit.add_argument("--streams", type=int, required=True)
    submit.add_argument("--tenant", default=None, help="single tenant for all jobs")
    submit.add_argument("--tenants", default=None, help="comma list, round-robin")
    submit.add_argument("--max-retries", type=int, default=3)
    submit.add_argument("--phase-shift-seconds", type=float, default=60.0)
    submit.add_argument("--smoke", action="store_true")
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser("status", help="job counts and the DLQ")
    status.add_argument("--store", required=True)
    status.add_argument("--json", action="store_true")
    status.set_defaults(func=cmd_status)

    requeue = sub.add_parser("requeue", help="requeue dead-lettered jobs")
    requeue.add_argument("--store", required=True)
    requeue.add_argument("--job-id", default=None)
    requeue.add_argument("--all", action="store_true")
    requeue.set_defaults(func=cmd_requeue)

    schedulers = sub.add_parser("schedulers", help="list registered schedulers")
    schedulers.set_defaults(func=cmd_schedulers)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)
