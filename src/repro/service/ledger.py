"""A multiprocessing-safe daily cloud-budget ledger shared by all shards.

The single-process fleet engine funds a fleet through one
:class:`~repro.core.fleet.DailyBudgetLedger`; a *sharded* fleet needs the
same semantics across worker processes.  :class:`SharedDailyLedger` keeps
per-day spend buckets in a raw shared-memory array guarded by one
cross-process lock:

* **conservation** — every charge lands in exactly one day bucket under the
  lock, so the per-day buckets always sum to the total charged, no matter
  how many workers charge concurrently;
* **atomic day-reset** — a charge computes its day index *inside* the lock,
  so a charge racing a day boundary is applied wholly to one day, and the
  first reader of a new day observes the full daily allowance (the "reset"
  is the atomic switch to a fresh, zeroed bucket);
* **no lost updates** — read-modify-write of a bucket never interleaves.

The ledger quacks like :class:`~repro.core.fleet.DailyBudgetLedger`
(``remaining`` / ``charge`` / ``spent_on`` / ``spend_by_day`` /
``total_dollars``) so a :class:`~repro.core.fleet.FleetEngine` can use it
directly via its ``ledger=`` hook.  Unlimited budgets take a lock-free fast
path — ``remaining`` is a constant and zero-dollar charges are dropped —
so fleets that never touch the cloud pay nothing for the shared ledger.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Optional

from repro.core.engine import SECONDS_PER_DAY
from repro.errors import ConfigurationError


class SharedDailyLedger:
    """Cross-process daily budget ledger backed by shared memory.

    Args:
        daily_budget_dollars: the fleet-wide daily allowance (``None``
            means unlimited cloud).
        base_day: first day index the ledger can account (charges are
            bucketed at ``day - base_day``); pass
            ``SharedDailyLedger.day_of(start_time)`` of the service window.
        horizon_days: number of day buckets after ``base_day``.
    """

    def __init__(
        self,
        daily_budget_dollars: Optional[float],
        base_day: int = 0,
        horizon_days: int = 4096,
    ):
        if daily_budget_dollars is not None and daily_budget_dollars < 0:
            raise ConfigurationError("daily_budget_dollars must be non-negative")
        if horizon_days < 1:
            raise ConfigurationError("horizon_days must be positive")
        self.daily_budget_dollars = daily_budget_dollars
        self.base_day = int(base_day)
        self.horizon_days = int(horizon_days)
        # lock=False: the explicit Lock below guards every access; buckets
        # live in raw shared memory inherited by (or pickled to) workers.
        self._spend = multiprocessing.Array("d", self.horizon_days, lock=False)
        self._lock = multiprocessing.Lock()

    @staticmethod
    def day_of(time: float) -> int:
        """Day index containing ``time`` (same convention as the engine)."""
        return int(time // SECONDS_PER_DAY)

    def _slot(self, day: int) -> int:
        slot = day - self.base_day
        if not 0 <= slot < self.horizon_days:
            raise ConfigurationError(
                f"day {day} outside the ledger horizon "
                f"[{self.base_day}, {self.base_day + self.horizon_days})"
            )
        return slot

    # ------------------------------------------------------------------ #
    # DailyBudgetLedger interface
    # ------------------------------------------------------------------ #
    def spent_on(self, time: float) -> float:
        """Dollars spent during the day containing ``time``."""
        slot = self._slot(self.day_of(time))
        with self._lock:
            return self._spend[slot]

    def remaining(self, time: float) -> float:
        """Budget left for the day containing ``time`` (``inf`` if unlimited)."""
        if self.daily_budget_dollars is None:
            return float("inf")
        return max(self.daily_budget_dollars - self.spent_on(time), 0.0)

    def charge(self, time: float, dollars: float) -> None:
        """Atomically charge ``dollars`` against the day containing ``time``."""
        if dollars == 0.0:
            return
        if dollars < 0:
            raise ConfigurationError("cannot charge negative dollars")
        # The slot is a pure function of the ``time`` argument (not of wall
        # clock or shared state), so it is computed outside the lock; only
        # the read-modify-write of the bucket needs the critical section.
        # A charge racing a day boundary still lands wholly in one bucket —
        # the bucket choice was never lock-dependent.
        slot = self._slot(self.day_of(time))
        with self._lock:
            self._spend[slot] += dollars

    def try_charge(self, time: float, dollars: float) -> bool:
        """Charge only if the day's remaining budget covers it (atomically).

        Unlike the engine's snapshot-then-charge pattern (which tolerates a
        bounded overshoot of one in-flight segment per shard), this is the
        strict reservation primitive: the check and the charge hold the lock
        together, so concurrent shards can never jointly overspend a day.
        """
        if dollars < 0:
            raise ConfigurationError("cannot charge negative dollars")
        if self.daily_budget_dollars is None:
            if dollars:
                self.charge(time, dollars)
            return True
        slot = self._slot(self.day_of(time))
        with self._lock:
            if self._spend[slot] + dollars > self.daily_budget_dollars + 1e-12:
                return False
            self._spend[slot] += dollars
            return True

    @property
    def spend_by_day(self) -> Dict[int, float]:
        """Snapshot of non-zero day buckets, keyed by absolute day index."""
        with self._lock:
            values = list(self._spend)
        return {
            self.base_day + slot: value
            for slot, value in enumerate(values)
            if value != 0.0
        }

    @property
    def total_dollars(self) -> float:
        """Total spend across every day bucket."""
        with self._lock:
            return sum(self._spend)
