"""The service scaling harness: one fleet, swept across shard counts.

:func:`run_service_scaling` ingests the *same* fleet scenario through the
ingestion service at every requested shard count and reports, per cell:
wall-clock, drop rate, p99 ingestion lag, and Jain's fairness index over
the per-stream served fractions (fleet-wide and the worst shard).  Both
``benchmarks/bench_fleet_scaling.py --streams N --shards ...`` and the
registered ``fleet_service_scaling`` figure spec run through this one
function, so the CLI benchmark and the reproduction suite cannot drift.

Why more shards are faster even on one core: a single engine's scheduler
scans every session per serve (O(streams) per segment), so splitting a
1k-stream fleet into 8 engines of 128 streams cuts the dominant scan cost
~8x before any multi-core parallelism — and each shard also brings its own
cluster, which is the capacity story behind drop rate and lag improving
with the shard count.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.runner import SystemBundle
from repro.service.service import FleetIngestionService, ServiceConfig
from repro.workloads.fleet import make_fleet_scenario


def run_service_scaling(
    bundle: SystemBundle,
    n_streams: int,
    shard_counts: Sequence[int],
    system: str = "static",
    scheduler: str = "fifo",
    cores_per_shard: int = 8,
    buffer_bytes: Optional[int] = 256_000_000,
    phase_shift_seconds: float = 60.0,
) -> List[Dict[str, Any]]:
    """One scaling row per shard count over a fixed ``n_streams`` fleet.

    Every cell ingests an identical scenario (same sources, same ids), so
    differences between rows are attributable to sharding alone.  Rows are
    flat dicts ready for tables, BENCH payloads, and the figure schema.
    """
    if n_streams < 1:
        raise ConfigurationError("n_streams must be positive")
    if not shard_counts:
        raise ConfigurationError("pass at least one shard count")
    scenario = make_fleet_scenario(
        bundle.setup, n_streams, phase_shift_seconds=phase_shift_seconds
    )
    rows: List[Dict[str, Any]] = []
    for n_shards in shard_counts:
        config = ServiceConfig(
            n_shards=n_shards,
            system=system,
            scheduler=scheduler,
            cores_per_shard=cores_per_shard,
            buffer_bytes=buffer_bytes,
            collect_lags=True,
        )
        service = FleetIngestionService(bundle, config)
        service.submit_fleet(scenario=scenario)
        report = service.run()
        shard_fairness = [stats.jain_fairness for stats in report.shard_stats]
        rows.append(
            {
                "shards": int(n_shards),
                "streams": int(n_streams),
                "wall_s": round(report.wall_seconds, 3),
                "drop_rate": round(report.drop_rate, 4),
                "p99_lag_s": round(report.p99_lag_seconds, 3),
                "jain_fairness": round(report.jain_fairness, 4),
                "min_shard_fairness": round(min(shard_fairness), 4),
                "success": report.counts["success"],
                "dead_letter": report.counts["dead_letter"],
                "segments": report.segments_total,
            }
        )
    return rows
