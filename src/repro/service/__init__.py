"""The fleet ingestion service: a production-shaped front end for the fleet runtime.

This package turns the single-process :class:`~repro.core.fleet.FleetEngine`
into a sharded ingestion *service*: streams are submitted as jobs with a full
``queued → running → success/failed/dead_letter`` lifecycle, a dispatcher
enforces per-tenant admission caps, a consistent-hash ring assigns each
stream to one of N shard workers (one engine per worker process), failed
jobs retry with exponential backoff and jitter, retry-exhausted jobs land in
a dead-letter queue, and a killed worker's running jobs are recovered onto
the surviving shards.  All shards charge one multiprocessing-safe
:class:`~repro.service.ledger.SharedDailyLedger` with atomic day-reset.

Entry points:

* programmatic — :class:`~repro.service.service.FleetIngestionService`;
* command line — ``python -m repro.service run/submit/status/requeue/schedulers``;
* benchmark — :func:`~repro.service.bench.run_service_scaling` (also
  registered as the ``fleet_service_scaling`` figure spec).
"""

from repro.service.dispatcher import JobDispatcher, TenantQuota
from repro.service.jobs import (
    DEAD_LETTER,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    SUCCESS,
    IngestionJob,
    InMemoryJobStore,
    JobStore,
    JsonFileJobStore,
    classify_error,
)
from repro.service.ledger import SharedDailyLedger
from repro.service.service import (
    FleetIngestionService,
    RetryPolicy,
    ServiceConfig,
    ServiceReport,
)
from repro.service.shards import ShardRing

__all__ = [
    "DEAD_LETTER",
    "FAILED",
    "FleetIngestionService",
    "IngestionJob",
    "InMemoryJobStore",
    "JOB_STATES",
    "JobDispatcher",
    "JobStore",
    "JsonFileJobStore",
    "QUEUED",
    "RUNNING",
    "RetryPolicy",
    "SUCCESS",
    "ServiceConfig",
    "ServiceReport",
    "ShardRing",
    "SharedDailyLedger",
    "TenantQuota",
    "classify_error",
]
