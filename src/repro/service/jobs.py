"""The ingestion job model: states, error classification, pluggable stores.

One :class:`IngestionJob` is the request to ingest one stream of a fleet
over the service's online window.  Jobs move through a small, explicit state
machine (mirroring the dispatcher/runner/DLQ design of production ingestion
orchestrators)::

                 submit                dispatch
    (created) ──────────▶  queued  ──────────────▶  running
                             ▲ ▲                   │      │
               retry w/      │ │ requeue_from_dlq  │      │
               backoff       │ └───────────┐       ▼      ▼
                             └── failed ◀──┼──── (error) success
                                   │       │
                   retries exhausted│       │
                   or non-retryable ▼       │
                               dead_letter ─┘

Every transition is validated and timestamped into the job's ``history``.
Errors are classified into stable codes (:func:`classify_error`); only
retryable codes re-enter the queue, and only until ``max_retries`` is
exhausted.  Jobs are persisted through a pluggable :class:`JobStore` — an
in-memory dict for programmatic/bench use, a JSON file for the CLI so
``submit``/``run``/``status`` invocations compose across processes.
"""

from __future__ import annotations

import json
import threading
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import (
    BudgetExceededError,
    BufferOverflowError,
    ConfigurationError,
    NotFittedError,
    PlacementError,
    PlanningError,
    ReproError,
)

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
FAILED = "failed"
DEAD_LETTER = "dead_letter"
SUCCESS = "success"

#: Every state, in rough lifecycle order.
JOB_STATES = (QUEUED, RUNNING, FAILED, DEAD_LETTER, SUCCESS)

#: Legal state transitions (``from -> {to, ...}``).
VALID_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    QUEUED: (RUNNING,),
    RUNNING: (SUCCESS, FAILED),
    FAILED: (QUEUED, DEAD_LETTER),
    DEAD_LETTER: (QUEUED,),  # operator requeue only
    SUCCESS: (),
}

#: Error codes that re-enter the queue (until retries are exhausted).
RETRYABLE_CODES = ("worker_crash", "injected", "overflow", "runtime", "resource")

#: Error codes that go straight to the dead-letter queue.
NON_RETRYABLE_CODES = ("config", "not_fitted", "planning", "slo_infeasible")


class InjectedFaultError(ReproError):
    """A deliberately injected job failure (fault-injection tests and CI)."""


def classify_error(error: BaseException) -> str:
    """Map an exception to a stable error code for the job record.

    Configuration-shaped errors are permanent — retrying an invalid request
    can never succeed, so they classify as non-retryable codes; everything
    else is assumed transient.

    An exception may carry its own classification via a string
    ``error_code`` attribute (e.g. the fleet planner's SLO admission error,
    which cannot be imported here without a cycle); that self-classification
    wins over the type-based mapping below.
    """
    own_code = getattr(error, "error_code", None)
    if isinstance(own_code, str) and own_code:
        return own_code
    if isinstance(error, InjectedFaultError):
        return "injected"
    if isinstance(error, BufferOverflowError):
        return "overflow"
    if isinstance(error, NotFittedError):
        return "not_fitted"
    if isinstance(error, (PlanningError, PlacementError, BudgetExceededError)):
        return "planning"
    if isinstance(error, ConfigurationError):
        return "config"
    if isinstance(error, (MemoryError, OSError)):
        return "resource"
    return "runtime"


def is_retryable(error_code: str) -> bool:
    """Whether a failure with ``error_code`` may re-enter the queue."""
    return error_code not in NON_RETRYABLE_CODES


@dataclass
class IngestionJob:
    """One stream-ingestion request moving through the service lifecycle.

    Attributes:
        job_id: unique id (UUID hex unless caller-assigned).
        stream_id: id of the fleet stream this job ingests.
        stream_index: index of the stream within the service's fleet
            scenario (how a JSON-persisted job is re-bound to its source).
        tenant_id: owner used for admission control and isolation caps.
        system: optional per-job policy-registry override (``None`` means
            the service's default system).
        status: current lifecycle state (one of :data:`JOB_STATES`).
        retry_count: retries consumed so far (0 on first attempt).
        max_retries: bound on retries before the job dead-letters.
        attempts: dispatch count (first attempt included, unlike retries).
        error_code: classification of the most recent failure.
        error_message: human-readable detail of the most recent failure.
        next_retry_at: wall-clock time (``time.time()``) before which the
            dispatcher must not re-dispatch the job.
        shard: shard the job last ran on.
        inject_failures: fail the first N attempts with an injected fault
            (fault-injection hooks for tests and the CI smoke job).
        submitted_at: wall-clock submission time.
        finished_at: wall-clock time of the terminal transition.
        metrics: flat result metrics of the successful attempt.
        history: ``[time, state, detail]`` rows, one per transition.
    """

    job_id: str
    stream_id: str
    stream_index: int = 0
    tenant_id: str = "default"
    system: Optional[str] = None
    status: str = QUEUED
    retry_count: int = 0
    max_retries: int = 3
    attempts: int = 0
    error_code: Optional[str] = None
    error_message: Optional[str] = None
    next_retry_at: float = 0.0
    shard: Optional[int] = None
    inject_failures: int = 0
    submitted_at: float = 0.0
    finished_at: Optional[float] = None
    metrics: Dict[str, float] = field(default_factory=dict)
    history: List[List[Any]] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        stream_id: str,
        stream_index: int = 0,
        tenant_id: str = "default",
        system: Optional[str] = None,
        max_retries: int = 3,
        inject_failures: int = 0,
        now: float = 0.0,
        job_id: Optional[str] = None,
    ) -> "IngestionJob":
        """A fresh ``queued`` job with a generated id and submit timestamp."""
        job = cls(
            job_id=job_id or uuid.uuid4().hex,
            stream_id=stream_id,
            stream_index=stream_index,
            tenant_id=tenant_id,
            system=system,
            max_retries=max_retries,
            inject_failures=inject_failures,
            submitted_at=now,
        )
        job.history.append([now, QUEUED, "submitted"])
        return job

    @property
    def terminal(self) -> bool:
        """Whether the job reached ``success`` or ``dead_letter``."""
        return self.status in (SUCCESS, DEAD_LETTER)

    def transition(self, new_status: str, now: float, detail: str = "") -> None:
        """Move to ``new_status``, validating against the state machine."""
        if new_status not in JOB_STATES:
            raise ConfigurationError(f"unknown job state {new_status!r}")
        if new_status not in VALID_TRANSITIONS[self.status]:
            raise ConfigurationError(
                f"job {self.job_id}: illegal transition {self.status!r} -> "
                f"{new_status!r}"
            )
        self.status = new_status
        self.history.append([now, new_status, detail])
        if new_status in (SUCCESS, DEAD_LETTER):
            self.finished_at = now

    def as_dict(self) -> Dict[str, Any]:
        """The job as a JSON-serializable dict (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "IngestionJob":
        """Rebuild a job from :meth:`as_dict` output."""
        return cls(**payload)


class JobStore:
    """Pluggable persistence for ingestion jobs (in-memory base class).

    The store is the service's source of truth for job state: the
    dispatcher admits and lists through it, and the service writes every
    lifecycle transition back through :meth:`update`.  Subclasses override
    :meth:`_persist` to durably record mutations; the base class keeps
    everything in one process-local dict guarded by a lock (the service
    mutates the store only from the parent process — shard workers are
    stateless executors, which is what keeps the store this simple).
    """

    def __init__(self) -> None:
        self._jobs: Dict[str, IngestionJob] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()

    def add(self, job: IngestionJob) -> IngestionJob:
        """Insert a new job; duplicate ids are configuration errors."""
        with self._lock:
            if job.job_id in self._jobs:
                raise ConfigurationError(f"duplicate job_id {job.job_id!r}")
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._persist()
        return job

    def get(self, job_id: str) -> IngestionJob:
        """The job with ``job_id`` (raises if unknown)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ConfigurationError(f"unknown job_id {job_id!r}")
        return job

    def update(self, job: IngestionJob) -> None:
        """Persist a mutation of an already-added job."""
        with self._lock:
            if job.job_id not in self._jobs:
                raise ConfigurationError(f"unknown job_id {job.job_id!r}")
            self._jobs[job.job_id] = job
            self._persist()

    def list(
        self,
        status: Optional[str] = None,
        tenant_id: Optional[str] = None,
    ) -> List[IngestionJob]:
        """Jobs in submission order, optionally filtered by state/tenant."""
        if status is not None and status not in JOB_STATES:
            raise ConfigurationError(f"unknown job state {status!r}")
        with self._lock:
            jobs = [self._jobs[job_id] for job_id in self._order]
        if status is not None:
            jobs = [job for job in jobs if job.status == status]
        if tenant_id is not None:
            jobs = [job for job in jobs if job.tenant_id == tenant_id]
        return jobs

    def counts(self) -> Dict[str, int]:
        """Number of jobs per state (every state present, zeros included)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self.list():
            counts[job.status] += 1
        return counts

    def _persist(self) -> None:
        """Durably record the current state (no-op in memory)."""


class InMemoryJobStore(JobStore):
    """The default, process-local store (alias of the base class)."""


class JsonFileJobStore(JobStore):
    """A job store persisted to one JSON file after every mutation.

    This is what makes the CLI compose across invocations: ``submit``
    appends queued jobs to the file, ``run`` drains them, ``status`` and
    ``requeue`` inspect and repair afterwards.  The file also carries a
    free-form ``meta`` dict (workload name, window sizes, fleet shape) so a
    later ``run`` can rebuild the exact fleet scenario the jobs refer to.
    The whole file is rewritten per mutation — the right trade-off for a
    CLI-scale queue, and trivially inspectable.
    """

    def __init__(self, path: Union[str, Path]):
        super().__init__()
        self.path = Path(path)
        self.meta: Dict[str, Any] = {}
        if self.path.exists():
            self._load()

    def set_meta(self, **meta: Any) -> None:
        """Merge ``meta`` into the file's metadata and persist."""
        with self._lock:
            self.meta.update(meta)
            self._persist()

    def _load(self) -> None:
        document = json.loads(self.path.read_text())
        self.meta = dict(document.get("meta", {}))
        for payload in document.get("jobs", []):
            job = IngestionJob.from_dict(payload)
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)

    def _persist(self) -> None:
        document = {
            "meta": self.meta,
            "jobs": [self._jobs[job_id].as_dict() for job_id in self._order],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True))
        tmp.replace(self.path)
