"""Greedy 0-1 knapsack approximation.

The Optimum baseline of the ablation study (Section 5.4, variant 2c) uses the
greedy 0-1 knapsack approximation to assign knob configurations to segments
with full knowledge of the ground-truth quality of every configuration on
every segment.  The idealized system of Appendix B.1 uses the same machinery
with forecasted (rather than ground-truth) per-segment qualities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class KnapsackItem:
    """A candidate (segment, configuration) upgrade considered by the solver.

    Attributes:
        key: identifier of the decision slot (e.g. the segment index).
        option: identifier of the chosen option (e.g. the knob configuration).
        value: quality gained by picking ``option`` for ``key``.
        cost: compute cost (core-seconds or dollars) of picking ``option``.
    """

    key: Hashable
    option: Hashable
    value: float
    cost: float


def greedy_knapsack(
    items: Sequence[KnapsackItem],
    budget: float,
) -> Tuple[Dict[Hashable, KnapsackItem], float, float]:
    """Greedy multiple-choice knapsack: pick at most one option per key.

    The solver starts from the cheapest option of every key (so that every
    segment is processed by *some* configuration, as required by the V-ETL
    throughput constraint) and then greedily applies the upgrades with the
    best marginal value per marginal cost until the budget is exhausted.

    Args:
        items: candidate options.  Every key must have at least one option.
        budget: total cost budget across all picks.

    Returns:
        A tuple ``(choices, total_value, total_cost)`` where ``choices`` maps
        every key to its selected :class:`KnapsackItem`.
    """
    if budget < 0:
        raise ConfigurationError("knapsack budget must be non-negative")
    if not items:
        return {}, 0.0, 0.0

    by_key: Dict[Hashable, List[KnapsackItem]] = {}
    for item in items:
        if item.cost < 0:
            raise ConfigurationError("knapsack item costs must be non-negative")
        by_key.setdefault(item.key, []).append(item)

    choices: Dict[Hashable, KnapsackItem] = {}
    total_cost = 0.0
    total_value = 0.0
    for key, options in by_key.items():
        options.sort(key=lambda candidate: (candidate.cost, -candidate.value))
        baseline = options[0]
        choices[key] = baseline
        total_cost += baseline.cost
        total_value += baseline.value

    # Build the upgrade list: replacing the current choice of a key with a
    # strictly better, more expensive option.
    improved = True
    while improved:
        improved = False
        best_ratio = 0.0
        best_key = None
        best_item = None
        for key, options in by_key.items():
            current = choices[key]
            for candidate in options:
                extra_cost = candidate.cost - current.cost
                extra_value = candidate.value - current.value
                if extra_value <= 0:
                    continue
                if total_cost + extra_cost > budget:
                    continue
                ratio = extra_value / extra_cost if extra_cost > 0 else float("inf")
                if ratio > best_ratio:
                    best_ratio = ratio
                    best_key = key
                    best_item = candidate
        if best_item is not None and best_key is not None:
            current = choices[best_key]
            total_cost += best_item.cost - current.cost
            total_value += best_item.value - current.value
            choices[best_key] = best_item
            improved = True

    return choices, total_value, total_cost
