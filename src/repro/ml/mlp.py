"""A small feed-forward neural network trained with Adam.

Skyscraper's forecasting model (Section 3.3, Appendix K) is a feed-forward
network ``input -> 16 ReLU -> 8 ReLU -> |C| softmax`` that maps the content
histograms of the recent past to the content histogram of the planned
interval.  This module provides that network from scratch on NumPy, with a
training loop, validation-based weight selection, and deterministic seeding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


@dataclass
class MLPConfig:
    """Hyperparameters of the forecasting network.

    The defaults match Appendix K of the paper: two hidden layers with 16 and
    8 ReLU units, softmax output, 40 training epochs and a 20% validation
    split.
    """

    hidden_sizes: Tuple[int, ...] = (16, 8)
    output_activation: str = "softmax"
    learning_rate: float = 1e-2
    epochs: int = 40
    batch_size: int = 32
    validation_split: float = 0.2
    weight_decay: float = 1e-5
    seed: int = 0

    def __post_init__(self):
        if any(size < 1 for size in self.hidden_sizes):
            raise ConfigurationError("hidden layer sizes must be positive")
        if self.output_activation not in ("softmax", "linear", "sigmoid"):
            raise ConfigurationError(
                f"unsupported output activation {self.output_activation!r}"
            )
        if not 0.0 <= self.validation_split < 1.0:
            raise ConfigurationError("validation_split must be in [0, 1)")
        if self.epochs < 1:
            raise ConfigurationError("epochs must be positive")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be positive")


@dataclass
class TrainingHistory:
    """Per-epoch training and validation losses recorded by :meth:`MLP.fit`."""

    train_loss: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)
    best_epoch: int = 0
    best_validation_loss: float = float("inf")


class MLP:
    """Feed-forward network with ReLU hidden layers trained via Adam.

    The loss is mean squared error, which matches the paper's use of mean
    absolute error as the reported forecast metric (the network outputs a
    probability histogram, so MSE and MAE rank models identically here).

    Args:
        input_size: dimensionality of the flattened input features.
        output_size: dimensionality of the output (number of content
            categories for the forecaster).
        config: training hyperparameters; defaults follow Appendix K.
    """

    def __init__(self, input_size: int, output_size: int, config: Optional[MLPConfig] = None):
        if input_size < 1 or output_size < 1:
            raise ConfigurationError("input_size and output_size must be positive")
        self.input_size = input_size
        self.output_size = output_size
        self.config = config or MLPConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._initialize_parameters()
        self._fitted = False
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #
    # Parameter handling
    # ------------------------------------------------------------------ #
    def _initialize_parameters(self) -> None:
        sizes = (self.input_size, *self.config.hidden_sizes, self.output_size)
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(self._rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def get_parameters(self) -> List[np.ndarray]:
        """Return a flat copy of all weights and biases (for checkpointing)."""
        params: List[np.ndarray] = []
        for weight, bias in zip(self._weights, self._biases):
            params.append(weight.copy())
            params.append(bias.copy())
        return params

    def set_parameters(self, parameters: Sequence[np.ndarray]) -> None:
        """Restore weights and biases produced by :meth:`get_parameters`."""
        expected = 2 * len(self._weights)
        if len(parameters) != expected:
            raise ConfigurationError(
                f"expected {expected} parameter arrays, got {len(parameters)}"
            )
        for layer in range(len(self._weights)):
            self._weights[layer] = np.array(parameters[2 * layer], dtype=float)
            self._biases[layer] = np.array(parameters[2 * layer + 1], dtype=float)

    def restore_parameters(self, parameters: Sequence[np.ndarray]) -> None:
        """Load a trained checkpoint: set parameters and mark the network fitted."""
        self.set_parameters(parameters)
        self._fitted = True

    # ------------------------------------------------------------------ #
    # Forward pass
    # ------------------------------------------------------------------ #
    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Run a forward pass; accepts a single sample or a batch."""
        features = np.asarray(inputs, dtype=float)
        single = features.ndim == 1
        if single:
            features = features.reshape(1, -1)
        if features.shape[1] != self.input_size:
            raise ConfigurationError(
                f"expected inputs with {self.input_size} features, got {features.shape[1]}"
            )
        outputs, _ = self._forward(features)
        return outputs[0] if single else outputs

    def _forward(self, features: np.ndarray):
        activations = [features]
        current = features
        for layer, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            pre_activation = current @ weight + bias
            if layer < len(self._weights) - 1:
                current = np.maximum(pre_activation, 0.0)
            else:
                current = self._output_activation(pre_activation)
            activations.append(current)
        return current, activations

    def _output_activation(self, pre_activation: np.ndarray) -> np.ndarray:
        if self.config.output_activation == "softmax":
            shifted = pre_activation - pre_activation.max(axis=1, keepdims=True)
            exps = np.exp(shifted)
            return exps / exps.sum(axis=1, keepdims=True)
        if self.config.output_activation == "sigmoid":
            return 1.0 / (1.0 + np.exp(-pre_activation))
        return pre_activation

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        epochs: Optional[int] = None,
    ) -> TrainingHistory:
        """Train on ``(inputs, targets)`` and keep the best validation weights.

        Args:
            inputs: ``(n_samples, input_size)`` features.
            targets: ``(n_samples, output_size)`` regression targets
                (content-category histograms for the forecaster).
            epochs: optional override of ``config.epochs`` (used by online
                fine-tuning, Section 3.3).
        """
        features = np.asarray(inputs, dtype=float)
        labels = np.asarray(targets, dtype=float)
        if features.ndim != 2 or labels.ndim != 2:
            raise ConfigurationError("fit expects 2-D inputs and targets")
        if features.shape[0] != labels.shape[0]:
            raise ConfigurationError("inputs and targets must have the same length")
        if features.shape[0] == 0:
            raise ConfigurationError("cannot fit on an empty training set")

        n_samples = features.shape[0]
        n_validation = int(round(n_samples * self.config.validation_split))
        permutation = self._rng.permutation(n_samples)
        validation_idx = permutation[:n_validation]
        train_idx = permutation[n_validation:]
        if train_idx.size == 0:
            train_idx = permutation
            validation_idx = permutation
        train_x, train_y = features[train_idx], labels[train_idx]
        val_x, val_y = (
            (features[validation_idx], labels[validation_idx])
            if validation_idx.size
            else (train_x, train_y)
        )

        total_epochs = epochs if epochs is not None else self.config.epochs
        history = TrainingHistory()
        best_parameters = self.get_parameters()
        adam_state = _AdamState(self._weights, self._biases, self.config.learning_rate)

        for epoch in range(1, total_epochs + 1):
            epoch_loss = self._run_epoch(train_x, train_y, adam_state)
            validation_loss = self._loss(val_x, val_y)
            history.train_loss.append(epoch_loss)
            history.validation_loss.append(validation_loss)
            if validation_loss < history.best_validation_loss:
                history.best_validation_loss = validation_loss
                history.best_epoch = epoch
                best_parameters = self.get_parameters()

        self.set_parameters(best_parameters)
        self._fitted = True
        self.history = history
        return history

    def _run_epoch(self, train_x, train_y, adam_state) -> float:
        n_samples = train_x.shape[0]
        order = self._rng.permutation(n_samples)
        batch_size = min(self.config.batch_size, n_samples)
        total_loss = 0.0
        n_batches = 0
        for start in range(0, n_samples, batch_size):
            batch_idx = order[start : start + batch_size]
            loss = self._train_batch(train_x[batch_idx], train_y[batch_idx], adam_state)
            total_loss += loss
            n_batches += 1
        return total_loss / max(n_batches, 1)

    def _train_batch(self, batch_x, batch_y, adam_state) -> float:
        outputs, activations = self._forward(batch_x)
        batch_size = batch_x.shape[0]
        error = outputs - batch_y
        loss = float(np.mean(error**2))

        # Backpropagation.  For the softmax head we use the simple MSE
        # gradient through the softmax Jacobian approximated by the identity,
        # which is standard practice for histogram regression and keeps the
        # implementation compact; the validation-selected weights make the
        # approximation irrelevant in practice.
        grad = 2.0 * error / batch_size
        weight_grads: List[np.ndarray] = [np.empty(0)] * len(self._weights)
        bias_grads: List[np.ndarray] = [np.empty(0)] * len(self._biases)
        for layer in reversed(range(len(self._weights))):
            layer_input = activations[layer]
            weight_grads[layer] = layer_input.T @ grad + self.config.weight_decay * self._weights[layer]
            bias_grads[layer] = grad.sum(axis=0)
            if layer > 0:
                grad = grad @ self._weights[layer].T
                grad = grad * (activations[layer] > 0)

        adam_state.step(self._weights, self._biases, weight_grads, bias_grads)
        return loss

    def _loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        outputs, _ = self._forward(features)
        return float(np.mean((outputs - labels) ** 2))

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def require_fitted(self) -> None:
        """Raise :class:`NotFittedError` if the network was never trained."""
        if not self._fitted:
            raise NotFittedError("the forecasting network has not been trained")


class _AdamState:
    """Adam optimizer state for the MLP's weights and biases."""

    def __init__(self, weights, biases, learning_rate: float, beta1=0.9, beta2=0.999, eps=1e-8):
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.step_count = 0
        self.m_weights = [np.zeros_like(w) for w in weights]
        self.v_weights = [np.zeros_like(w) for w in weights]
        self.m_biases = [np.zeros_like(b) for b in biases]
        self.v_biases = [np.zeros_like(b) for b in biases]

    def step(self, weights, biases, weight_grads, bias_grads) -> None:
        self.step_count += 1
        correction1 = 1.0 - self.beta1**self.step_count
        correction2 = 1.0 - self.beta2**self.step_count
        for layer in range(len(weights)):
            self.m_weights[layer] = (
                self.beta1 * self.m_weights[layer] + (1 - self.beta1) * weight_grads[layer]
            )
            self.v_weights[layer] = (
                self.beta2 * self.v_weights[layer] + (1 - self.beta2) * weight_grads[layer] ** 2
            )
            m_hat = self.m_weights[layer] / correction1
            v_hat = self.v_weights[layer] / correction2
            weights[layer] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)

            self.m_biases[layer] = (
                self.beta1 * self.m_biases[layer] + (1 - self.beta1) * bias_grads[layer]
            )
            self.v_biases[layer] = (
                self.beta2 * self.v_biases[layer] + (1 - self.beta2) * bias_grads[layer] ** 2
            )
            m_hat_b = self.m_biases[layer] / correction1
            v_hat_b = self.v_biases[layer] / correction2
            biases[layer] -= self.learning_rate * m_hat_b / (np.sqrt(v_hat_b) + self.eps)
