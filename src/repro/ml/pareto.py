"""Pareto-frontier utilities.

Skyscraper keeps only knob configurations on the work-quality Pareto frontier
and only task placements on the cost-runtime Pareto frontier (Section 3.1).
These helpers work on generic ``(cost, value)`` points where lower cost and
higher value are better.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple


def is_dominated(
    candidate: Tuple[float, float],
    others: Sequence[Tuple[float, float]],
) -> bool:
    """Whether ``candidate`` is dominated by any point in ``others``.

    A point ``(cost, value)`` is dominated when another point has cost no
    higher and value no lower, with at least one strict inequality.
    """
    cost, value = candidate
    for other_cost, other_value in others:
        if (other_cost, other_value) == (cost, value):
            continue
        if other_cost <= cost and other_value >= value:
            if other_cost < cost or other_value > value:
                return True
    return False


def pareto_front(points: Mapping[Hashable, Tuple[float, float]]) -> List[Hashable]:
    """Keys of ``points`` that lie on the (min cost, max value) Pareto frontier.

    Duplicate ``(cost, value)`` pairs are all kept; the result is sorted by
    increasing cost, breaking ties by decreasing value, so downstream code can
    treat it as the "cheap to expensive" ladder the knob switcher walks when
    it has to fall back to cheaper configurations (Section 4.2).
    """
    items = list(points.items())
    all_points = [point for _, point in items]
    frontier = [key for key, point in items if not is_dominated(point, all_points)]
    frontier.sort(key=lambda key: (points[key][0], -points[key][1]))
    return frontier


def pareto_front_points(
    points: Sequence[Tuple[float, float]],
) -> List[int]:
    """Index-based variant of :func:`pareto_front` for plain point lists."""
    mapping: Dict[int, Tuple[float, float]] = {index: point for index, point in enumerate(points)}
    return pareto_front(mapping)
