"""From-scratch ML substrate used by Skyscraper's offline and online phases.

The paper relies on a handful of standard algorithms: KMeans clustering for
content categories (Section 3.2), a Gaussian mixture model as an ablation
alternative (Appendix B.2), a small feed-forward forecasting network
(Section 3.3), a linear program for knob planning (Section 4.1), greedy hill
climbing for knob-configuration filtering (Appendix A.1), and a greedy 0-1
knapsack approximation for the Optimum baseline (Section 5.4).  Only NumPy and
SciPy are available offline, so this package implements each of them directly.
"""

from repro.ml.kmeans import KMeans, KMeansResult
from repro.ml.gmm import GaussianMixture
from repro.ml.mlp import MLP, MLPConfig, TrainingHistory
from repro.ml.knapsack import KnapsackItem, greedy_knapsack
from repro.ml.hillclimb import hill_climb
from repro.ml.pareto import pareto_front, is_dominated
from repro.ml.linear_program import LinearProgram, LPSolution, solve_linear_program
from repro.ml.metrics import (
    mean_absolute_error,
    mean_squared_error,
    normalize_histogram,
    histogram_distance,
)

__all__ = [
    "KMeans",
    "KMeansResult",
    "GaussianMixture",
    "MLP",
    "MLPConfig",
    "TrainingHistory",
    "KnapsackItem",
    "greedy_knapsack",
    "hill_climb",
    "pareto_front",
    "is_dominated",
    "LinearProgram",
    "LPSolution",
    "solve_linear_program",
    "mean_absolute_error",
    "mean_squared_error",
    "normalize_histogram",
    "histogram_distance",
]
