"""Gaussian mixture model fitted with expectation-maximization.

Appendix B.2 of the paper compares KMeans content categorization against a
Gaussian mixture model and finds no end-to-end difference.  This module
provides the GMM half of that ablation (Figure 17).  The implementation uses
diagonal covariances, which is sufficient for the low-dimensional quality
vectors Skyscraper clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.ml.kmeans import KMeans

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass
class GMMResult:
    """Parameters of a fitted Gaussian mixture.

    Attributes:
        means: ``(n_components, n_features)`` component means.
        variances: ``(n_components, n_features)`` diagonal variances.
        weights: ``(n_components,)`` mixing weights summing to one.
        log_likelihood: final per-sample average log likelihood.
        n_iterations: EM iterations executed.
    """

    means: np.ndarray
    variances: np.ndarray
    weights: np.ndarray
    log_likelihood: float
    n_iterations: int


class GaussianMixture:
    """Diagonal-covariance Gaussian mixture model trained with EM.

    Args:
        n_components: number of mixture components (content categories).
        max_iterations: maximum EM iterations.
        tolerance: convergence threshold on the average log-likelihood change.
        min_variance: variance floor preventing degenerate components.
        seed: seed for KMeans initialization.
    """

    def __init__(
        self,
        n_components: int,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        min_variance: float = 1e-6,
        seed: Optional[int] = None,
    ):
        if n_components < 1:
            raise ConfigurationError("n_components must be at least 1")
        self.n_components = n_components
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.min_variance = min_variance
        self.seed = seed
        self._result: Optional[GMMResult] = None

    @property
    def result(self) -> GMMResult:
        if self._result is None:
            raise NotFittedError("GaussianMixture.fit must be called first")
        return self._result

    @property
    def means(self) -> np.ndarray:
        """Component means; the GMM analogue of KMeans cluster centers."""
        return self.result.means

    def fit(self, data: np.ndarray) -> GMMResult:
        """Fit the mixture to ``data`` with EM, initialized from KMeans."""
        points = np.asarray(data, dtype=float)
        if points.ndim == 1:
            points = points.reshape(-1, 1)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ConfigurationError("GaussianMixture.fit expects a non-empty 2-D array")

        n_samples, n_features = points.shape
        n_components = min(self.n_components, n_samples)

        kmeans = KMeans(n_clusters=n_components, seed=self.seed)
        km_result = kmeans.fit(points)
        means = km_result.centers.copy()
        variances = np.full((n_components, n_features), max(points.var(), self.min_variance))
        weights = np.bincount(km_result.labels, minlength=n_components).astype(float)
        weights = np.maximum(weights, 1.0)
        weights /= weights.sum()

        previous_ll = -np.inf
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            log_resp, log_likelihood = self._e_step(points, means, variances, weights)
            means, variances, weights = self._m_step(points, log_resp)
            if abs(log_likelihood - previous_ll) <= self.tolerance:
                previous_ll = log_likelihood
                break
            previous_ll = log_likelihood

        self._result = GMMResult(
            means=means,
            variances=variances,
            weights=weights,
            log_likelihood=float(previous_ll),
            n_iterations=iteration,
        )
        return self._result

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        """Fit and return the most likely component for each sample."""
        self.fit(data)
        return self.predict(data)

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Most likely component for each sample under the fitted model."""
        points = np.asarray(data, dtype=float)
        if points.ndim == 1:
            points = points.reshape(-1, 1)
        result = self.result
        log_prob = self._log_component_densities(
            points, result.means, result.variances, result.weights
        )
        return np.argmax(log_prob, axis=1)

    def predict_partial(self, value: float, dimension: int) -> int:
        """Classify a sample from a single dimension (knob-switcher analogue)."""
        result = self.result
        if not 0 <= dimension < result.means.shape[1]:
            raise ConfigurationError("dimension out of range")
        means = result.means[:, dimension]
        variances = result.variances[:, dimension]
        log_prob = (
            np.log(result.weights)
            - 0.5 * (_LOG_2PI + np.log(variances))
            - 0.5 * (value - means) ** 2 / variances
        )
        return int(np.argmax(log_prob))

    def _e_step(self, points, means, variances, weights):
        log_prob = self._log_component_densities(points, means, variances, weights)
        log_norm = _logsumexp(log_prob, axis=1)
        log_resp = log_prob - log_norm[:, np.newaxis]
        return log_resp, float(np.mean(log_norm))

    def _m_step(self, points, log_resp):
        resp = np.exp(log_resp)
        component_weight = resp.sum(axis=0) + 1e-12
        weights = component_weight / component_weight.sum()
        means = (resp.T @ points) / component_weight[:, np.newaxis]
        diffs_sq = (points[:, np.newaxis, :] - means[np.newaxis, :, :]) ** 2
        variances = np.einsum("nk,nkf->kf", resp, diffs_sq) / component_weight[:, np.newaxis]
        variances = np.maximum(variances, self.min_variance)
        return means, variances, weights

    @staticmethod
    def _log_component_densities(points, means, variances, weights):
        diffs_sq = (points[:, np.newaxis, :] - means[np.newaxis, :, :]) ** 2
        log_density = -0.5 * np.sum(
            _LOG_2PI + np.log(variances)[np.newaxis, :, :] + diffs_sq / variances[np.newaxis, :, :],
            axis=2,
        )
        return log_density + np.log(weights)[np.newaxis, :]


def _logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    maxima = np.max(values, axis=axis, keepdims=True)
    summed = np.sum(np.exp(values - maxima), axis=axis, keepdims=True)
    return np.squeeze(maxima + np.log(summed), axis=axis)
