"""Greedy hill climbing over discrete configuration spaces.

VideoStorm and Skyscraper (Appendix A.1) filter the exponentially large set of
knob configurations with greedy hill climbing: starting from a configuration,
repeatedly move to the best neighbouring configuration (one knob changed by
one step) until no neighbour improves the objective.  Restarting from several
seeds approximates the work-quality Pareto frontier.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.errors import ConfigurationError

Configuration = Tuple[Hashable, ...]


def neighbours(
    configuration: Configuration,
    domains: Sequence[Sequence[Hashable]],
) -> List[Configuration]:
    """All configurations that differ from ``configuration`` in one knob by one step."""
    if len(configuration) != len(domains):
        raise ConfigurationError("configuration length must match number of knob domains")
    result: List[Configuration] = []
    for knob_index, domain in enumerate(domains):
        try:
            position = list(domain).index(configuration[knob_index])
        except ValueError as exc:
            raise ConfigurationError(
                f"value {configuration[knob_index]!r} not in domain of knob {knob_index}"
            ) from exc
        for offset in (-1, 1):
            neighbour_position = position + offset
            if 0 <= neighbour_position < len(domain):
                candidate = list(configuration)
                candidate[knob_index] = domain[neighbour_position]
                result.append(tuple(candidate))
    return result


def hill_climb(
    domains: Sequence[Sequence[Hashable]],
    objective: Callable[[Configuration], float],
    start: Configuration = None,
    max_steps: int = 1000,
) -> Tuple[Configuration, float, List[Configuration]]:
    """Greedy hill climbing maximizing ``objective`` over the knob lattice.

    Args:
        domains: ordered value domain of each knob (cheap to expensive order
            is conventional but not required).
        objective: function scoring a configuration; higher is better.
        start: optional starting configuration; defaults to the first value of
            every domain (the cheapest configuration).
        max_steps: safety bound on the number of moves.

    Returns:
        ``(best_configuration, best_score, visited)`` where ``visited`` lists
        every configuration whose objective was evaluated, in evaluation
        order.  Callers use ``visited`` to assemble Pareto candidate sets.
    """
    if not domains or any(len(domain) == 0 for domain in domains):
        raise ConfigurationError("every knob domain must be non-empty")
    current: Configuration = tuple(start) if start is not None else tuple(
        domain[0] for domain in domains
    )
    current_score = objective(current)
    visited: List[Configuration] = [current]
    seen: Set[Configuration] = {current}

    for _ in range(max_steps):
        best_neighbour = None
        best_score = current_score
        for candidate in neighbours(current, domains):
            if candidate not in seen:
                seen.add(candidate)
                visited.append(candidate)
            score = objective(candidate)
            if score > best_score:
                best_score = score
                best_neighbour = candidate
        if best_neighbour is None:
            break
        current = best_neighbour
        current_score = best_score

    return current, current_score, visited


def multi_start_hill_climb(
    domains: Sequence[Sequence[Hashable]],
    objective: Callable[[Configuration], float],
    starts: Iterable[Configuration],
    max_steps: int = 1000,
) -> Dict[Configuration, float]:
    """Run :func:`hill_climb` from several starting points.

    Returns a mapping from every visited configuration to its objective value,
    which the knob-configuration filter turns into a Pareto frontier.
    """
    scores: Dict[Configuration, float] = {}
    for start in starts:
        _, _, visited = hill_climb(domains, objective, start=start, max_steps=max_steps)
        for configuration in visited:
            if configuration not in scores:
                scores[configuration] = objective(configuration)
    if not scores:
        _, _, visited = hill_climb(domains, objective, max_steps=max_steps)
        for configuration in visited:
            scores[configuration] = objective(configuration)
    return scores
