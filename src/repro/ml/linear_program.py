"""Linear-program wrapper around :func:`scipy.optimize.linprog`.

The knob planner (Section 4.1) solves a maximization LP whose decision
variables are the per-category configuration frequencies ``alpha[k, c]``.
This module exposes a small, explicit LP builder so the planner code reads
like the paper's formulation (Equations 2-4) instead of raw matrix plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import PlanningError


@dataclass
class LPSolution:
    """Solution of a :class:`LinearProgram`.

    Attributes:
        values: optimal value of every registered variable, keyed by name.
        objective: optimal objective value (of the *maximization* problem).
        status: human-readable solver status.
    """

    values: Dict[Hashable, float]
    objective: float
    status: str

    def __getitem__(self, name: Hashable) -> float:
        return self.values[name]


class LinearProgram:
    """A maximization LP with named variables and explicit constraints.

    Usage::

        lp = LinearProgram()
        lp.add_variable("x", objective=3.0, lower=0.0)
        lp.add_variable("y", objective=2.0, lower=0.0)
        lp.add_constraint_le({"x": 1.0, "y": 1.0}, 4.0)
        lp.add_constraint_eq({"x": 1.0}, 1.0)
        solution = lp.solve()
    """

    def __init__(self):
        self._names: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        self._objective: List[float] = []
        self._lower: List[float] = []
        self._upper: List[Optional[float]] = []
        self._le_constraints: List[Tuple[Dict[Hashable, float], float]] = []
        self._eq_constraints: List[Tuple[Dict[Hashable, float], float]] = []

    @property
    def n_variables(self) -> int:
        return len(self._names)

    @property
    def n_constraints(self) -> int:
        return len(self._le_constraints) + len(self._eq_constraints)

    def add_variable(
        self,
        name: Hashable,
        objective: float = 0.0,
        lower: float = 0.0,
        upper: Optional[float] = None,
    ) -> None:
        """Register a decision variable with its objective coefficient."""
        if name in self._index:
            raise PlanningError(f"variable {name!r} registered twice")
        self._index[name] = len(self._names)
        self._names.append(name)
        self._objective.append(objective)
        self._lower.append(lower)
        self._upper.append(upper)

    def add_constraint_le(self, coefficients: Dict[Hashable, float], bound: float) -> None:
        """Add ``sum(coefficients[v] * v) <= bound``."""
        self._check_known(coefficients)
        self._le_constraints.append((dict(coefficients), bound))

    def add_constraint_eq(self, coefficients: Dict[Hashable, float], bound: float) -> None:
        """Add ``sum(coefficients[v] * v) == bound``."""
        self._check_known(coefficients)
        self._eq_constraints.append((dict(coefficients), bound))

    def _check_known(self, coefficients: Dict[Hashable, float]) -> None:
        unknown = [name for name in coefficients if name not in self._index]
        if unknown:
            raise PlanningError(f"constraint references unknown variables: {unknown}")

    def solve(self) -> LPSolution:
        """Solve the LP and return the optimal variable assignment.

        Raises:
            PlanningError: if the LP is infeasible or unbounded.
        """
        if not self._names:
            raise PlanningError("linear program has no variables")
        n_vars = len(self._names)
        # scipy minimizes, so negate the objective for maximization.
        cost = -np.array(self._objective, dtype=float)

        a_ub, b_ub = self._build_matrix(self._le_constraints, n_vars)
        a_eq, b_eq = self._build_matrix(self._eq_constraints, n_vars)
        bounds = list(zip(self._lower, self._upper))

        result = linprog(
            c=cost,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            raise PlanningError(f"linear program could not be solved: {result.message}")
        values = {name: float(result.x[index]) for name, index in self._index.items()}
        return LPSolution(values=values, objective=float(-result.fun), status=result.message)

    def _build_matrix(self, constraints, n_vars):
        if not constraints:
            return None, None
        matrix = np.zeros((len(constraints), n_vars))
        bounds = np.zeros(len(constraints))
        for row, (coefficients, bound) in enumerate(constraints):
            for name, coefficient in coefficients.items():
                matrix[row, self._index[name]] = coefficient
            bounds[row] = bound
        return matrix, bounds


def solve_linear_program(
    objective: Dict[Hashable, float],
    le_constraints: Sequence[Tuple[Dict[Hashable, float], float]] = (),
    eq_constraints: Sequence[Tuple[Dict[Hashable, float], float]] = (),
    lower: float = 0.0,
    upper: Optional[float] = None,
) -> LPSolution:
    """Convenience wrapper building and solving a maximization LP in one call."""
    lp = LinearProgram()
    for name, coefficient in objective.items():
        lp.add_variable(name, objective=coefficient, lower=lower, upper=upper)
    for coefficients, bound in le_constraints:
        lp.add_constraint_le(coefficients, bound)
    for coefficients, bound in eq_constraints:
        lp.add_constraint_eq(coefficients, bound)
    return lp.solve()
