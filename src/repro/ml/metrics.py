"""Small numeric helpers shared by the forecaster, planner, and experiments."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


def mean_absolute_error(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean absolute error between two arrays of the same shape.

    This is the forecast-accuracy metric reported in Section 5.6 and
    Tables 5-6.
    """
    predicted = np.asarray(predictions, dtype=float)
    expected = np.asarray(targets, dtype=float)
    if predicted.shape != expected.shape:
        raise ConfigurationError(
            f"shape mismatch: predictions {predicted.shape} vs targets {expected.shape}"
        )
    if predicted.size == 0:
        raise ConfigurationError("cannot compute MAE of empty arrays")
    return float(np.mean(np.abs(predicted - expected)))


def mean_squared_error(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean squared error between two arrays of the same shape."""
    predicted = np.asarray(predictions, dtype=float)
    expected = np.asarray(targets, dtype=float)
    if predicted.shape != expected.shape:
        raise ConfigurationError(
            f"shape mismatch: predictions {predicted.shape} vs targets {expected.shape}"
        )
    if predicted.size == 0:
        raise ConfigurationError("cannot compute MSE of empty arrays")
    return float(np.mean((predicted - expected) ** 2))


def normalize_histogram(counts: Sequence[float]) -> np.ndarray:
    """Normalize a non-negative count vector so its entries sum to one.

    A zero vector normalizes to the uniform distribution, which is the
    behaviour the knob switcher needs when a content category has not been
    observed yet.
    """
    values = np.asarray(counts, dtype=float)
    if values.ndim != 1:
        raise ConfigurationError("normalize_histogram expects a 1-D vector")
    if np.any(values < 0):
        raise ConfigurationError("histogram counts must be non-negative")
    total = values.sum()
    if total <= 0:
        return np.full(values.shape, 1.0 / max(len(values), 1))
    return values / total


def histogram_distance(left: Sequence[float], right: Sequence[float]) -> float:
    """Total-variation distance between two histograms (after normalization)."""
    left_norm = normalize_histogram(left)
    right_norm = normalize_histogram(right)
    if left_norm.shape != right_norm.shape:
        raise ConfigurationError("histograms must have the same number of bins")
    return float(0.5 * np.sum(np.abs(left_norm - right_norm)))
