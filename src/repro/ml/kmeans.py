"""Lloyd's KMeans clustering with k-means++ initialization.

Skyscraper clusters |K|-dimensional quality vectors into content categories
(Section 3.2).  The quality vectors are low dimensional (one entry per knob
configuration, typically 3-15), so a plain NumPy implementation of Lloyd's
algorithm is more than fast enough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


@dataclass
class KMeansResult:
    """Outcome of a single KMeans fit.

    Attributes:
        centers: ``(n_clusters, n_features)`` array of cluster centers.
        labels: ``(n_samples,)`` array of cluster assignments.
        inertia: sum of squared distances of samples to their closest center.
        n_iterations: number of Lloyd iterations executed before convergence.
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iterations: int


class KMeans:
    """KMeans clustering (Lloyd's algorithm) with k-means++ seeding.

    Args:
        n_clusters: number of clusters (the paper's number of content
            categories; Appendix I.1 recommends a default of 4).
        n_init: number of random restarts; the best run (lowest inertia) wins.
        max_iterations: maximum Lloyd iterations per restart.
        tolerance: relative center-shift threshold for convergence.
        seed: seed for the internal random generator, for reproducibility.
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 8,
        max_iterations: int = 300,
        tolerance: float = 1e-6,
        seed: Optional[int] = None,
    ):
        if n_clusters < 1:
            raise ConfigurationError("n_clusters must be at least 1")
        if n_init < 1:
            raise ConfigurationError("n_init must be at least 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self._rng = np.random.default_rng(seed)
        self._result: Optional[KMeansResult] = None

    @property
    def centers(self) -> np.ndarray:
        """Cluster centers of the best fit; raises if :meth:`fit` was not run."""
        if self._result is None:
            raise NotFittedError("KMeans.fit must be called before accessing centers")
        return self._result.centers

    @property
    def result(self) -> KMeansResult:
        if self._result is None:
            raise NotFittedError("KMeans.fit must be called before accessing result")
        return self._result

    def fit(self, data: np.ndarray) -> KMeansResult:
        """Cluster ``data`` and return the best :class:`KMeansResult`.

        Args:
            data: ``(n_samples, n_features)`` array.  If fewer samples than
                clusters are provided the effective cluster count is reduced.
        """
        points = np.asarray(data, dtype=float)
        if points.ndim == 1:
            points = points.reshape(-1, 1)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ConfigurationError("KMeans.fit expects a non-empty 2-D array")

        effective_clusters = min(self.n_clusters, points.shape[0])
        best: Optional[KMeansResult] = None
        for _ in range(self.n_init):
            result = self._single_run(points, effective_clusters)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        self._result = best
        return best

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        """Fit the model and return the cluster label of each sample."""
        return self.fit(data).labels

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Assign each sample in ``data`` to its nearest fitted center."""
        points = np.asarray(data, dtype=float)
        if points.ndim == 1:
            points = points.reshape(-1, 1)
        distances = _pairwise_sq_distances(points, self.centers)
        return np.argmin(distances, axis=1)

    def predict_partial(self, value: float, dimension: int) -> int:
        """Classify a sample from a single known dimension.

        This mirrors the knob switcher's content classification (Section 4.2,
        Equation 5): only the quality of the currently running configuration
        is observable, so the closest center along that single dimension is
        selected.
        """
        centers = self.centers
        if not 0 <= dimension < centers.shape[1]:
            raise ConfigurationError(
                f"dimension {dimension} out of range for centers with "
                f"{centers.shape[1]} features"
            )
        distances = np.abs(centers[:, dimension] - value)
        return int(np.argmin(distances))

    def _single_run(self, points: np.ndarray, n_clusters: int) -> KMeansResult:
        centers = self._init_centers(points, n_clusters)
        labels = np.zeros(points.shape[0], dtype=int)
        for iteration in range(1, self.max_iterations + 1):
            distances = _pairwise_sq_distances(points, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = np.empty_like(centers)
            for cluster in range(n_clusters):
                members = points[labels == cluster]
                if members.shape[0] == 0:
                    # Re-seed empty clusters with the point farthest from its center.
                    farthest = int(np.argmax(np.min(distances, axis=1)))
                    new_centers[cluster] = points[farthest]
                else:
                    new_centers[cluster] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if shift <= self.tolerance:
                break
        distances = _pairwise_sq_distances(points, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(np.sum(np.min(distances, axis=1)))
        return KMeansResult(
            centers=centers, labels=labels, inertia=inertia, n_iterations=iteration
        )

    def _init_centers(self, points: np.ndarray, n_clusters: int) -> np.ndarray:
        """k-means++ seeding: spread the initial centers apart."""
        n_samples = points.shape[0]
        centers = np.empty((n_clusters, points.shape[1]), dtype=float)
        first = self._rng.integers(0, n_samples)
        centers[0] = points[first]
        closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
        for cluster in range(1, n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                # All points identical to existing centers; pick uniformly.
                index = self._rng.integers(0, n_samples)
            else:
                probabilities = closest_sq / total
                index = self._rng.choice(n_samples, p=probabilities)
            centers[cluster] = points[index]
            new_sq = np.sum((points - centers[cluster]) ** 2, axis=1)
            closest_sq = np.minimum(closest_sq, new_sq)
        return centers


def _pairwise_sq_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every point and every center."""
    diffs = points[:, np.newaxis, :] - centers[np.newaxis, :, :]
    return np.sum(diffs * diffs, axis=2)
