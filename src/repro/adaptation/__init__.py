"""Online adaptation: drift detection + staged incremental re-fits.

The offline phase (:mod:`repro.core.offline`) is fit-once; this package is
the re-learning loop a production deployment needs when content shifts.  The
:class:`DriftMonitor` watches the online phase's only observables — the
categorizer's classification confidence and the mismatch between the planned
content distribution and what actually arrives — through CUSUM change
detectors with hysteresis.  On a trigger, the :class:`StagedRefitter` re-runs
the offline pipeline against the content-addressed stage cache with the
history-labeling window extended to "now": profiles unchanged means only
``label_history`` and ``train_forecaster`` actually re-run, and the MLP
forecaster is warm-started from the previous weights.

:class:`AdaptiveSkyscraperPolicy` ties the two together behind the standard
policy protocol; with ``drift_monitor=None`` it is bit-for-bit identical to
the plain :class:`~repro.core.policy.SkyscraperPolicy`.
"""

from repro.adaptation.drift import (
    CusumDetector,
    DriftConfig,
    DriftMonitor,
    DriftTrigger,
)
from repro.adaptation.policy import AdaptiveSkyscraperPolicy, build_adaptive_policy
from repro.adaptation.refit import RefitReport, StagedRefitter

__all__ = [
    "AdaptiveSkyscraperPolicy",
    "CusumDetector",
    "DriftConfig",
    "DriftMonitor",
    "DriftTrigger",
    "RefitReport",
    "StagedRefitter",
    "build_adaptive_policy",
]
