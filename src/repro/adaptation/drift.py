"""CUSUM drift detection over the online phase's observable signals.

The online phase never sees ground-truth quality, so drift has to be read off
what the deployed models themselves expose:

* **classification confidence** — the categorizer's distance from each
  segment's partial quality vector to its nearest cluster center.  When
  content leaves the regime the categories were learned on, these residuals
  grow.
* **forecast error** — the mean absolute error between the content
  distribution the current plan was built from and the category histogram
  that actually arrived.  When the content mix shifts, the plan is optimizing
  for the wrong distribution even if individual segments still classify
  confidently.

Each signal feeds a :class:`CusumDetector`: a Welford warmup freezes a
baseline mean/std, then two one-sided standardized CUSUM scores track mean
shifts and (optionally) a folded-``|z|`` score tracks variance inflation.  A
score crossing the threshold fires a :class:`DriftTrigger`; hysteresis
(score reset, cooldown, and a re-arm level below the firing threshold)
prevents a single sustained shift from flapping into a trigger storm.

:class:`DriftMonitor` bundles one detector per signal and is the object the
adaptive policy holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError

#: Mean and standard deviation of ``|Z|`` for a standard normal ``Z`` — the
#: folded-normal moments used to standardize the variance channel.
_FOLDED_MEAN = math.sqrt(2.0 / math.pi)
_FOLDED_STD = math.sqrt(1.0 - 2.0 / math.pi)


@dataclass(frozen=True)
class DriftConfig:
    """Tuning knobs for one :class:`CusumDetector`.

    Attributes:
        burn_in: observations discarded entirely before the warmup starts —
            lets a deployment's startup transient (plan settling, switcher
            cold start) pass before the baseline is estimated.
        warmup: observations used to estimate the baseline mean/std before
            any scoring happens.  No trigger can fire during warmup.
        drift_allowance: the CUSUM slack ``k`` in standard deviations; shifts
            smaller than ``k`` sigma are absorbed rather than accumulated.
        variance_allowance: the slack of the folded-``|z|`` variance score.
            Larger than ``drift_allowance`` by default: the folded increments
            have a heavy right tail (one 3-sigma draw contributes ~3.2), so
            the variance channel needs more slack than the mean channels to
            reach a comparable false-alarm rate.
        threshold: the CUSUM decision level ``h``; a score reaching it fires.
            Detection lag for a sustained ``delta``-sigma mean shift is about
            ``h / (delta - k)`` observations.
        std_inflation: multiplier applied to the warmup-estimated standard
            deviation when the baseline freezes.  An n-sample std estimate
            has ~``1/sqrt(2n)`` relative error; an underestimate inflates
            every z-score and turns stationary noise into false alarms, so
            the frozen baseline errs on the wide side.
        track_variance: also accumulate a folded-``|z|`` score so pure
            variance inflation (mean unchanged) is detected.
        rearm_fraction: after a trigger the detector re-arms only once its
            score has fallen back below ``rearm_fraction * threshold``.
        cooldown: minimum observations after a trigger before the detector
            may re-arm, regardless of score.
        min_std: floor for the baseline standard deviation, so a nearly
            constant warmup signal does not turn measurement noise into
            enormous z-scores.
    """

    burn_in: int = 0
    warmup: int = 128
    drift_allowance: float = 0.5
    variance_allowance: float = 1.0
    threshold: float = 12.0
    std_inflation: float = 1.15
    track_variance: bool = True
    rearm_fraction: float = 0.25
    cooldown: int = 128
    min_std: float = 1e-6

    def __post_init__(self) -> None:
        if self.burn_in < 0:
            raise ConfigurationError("burn_in must be non-negative")
        if self.warmup < 2:
            raise ConfigurationError("warmup must be at least 2 observations")
        if self.drift_allowance < 0:
            raise ConfigurationError("drift_allowance must be non-negative")
        if self.variance_allowance < 0:
            raise ConfigurationError("variance_allowance must be non-negative")
        if self.threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        if self.std_inflation < 1.0:
            raise ConfigurationError("std_inflation must be at least 1.0")
        if not 0.0 <= self.rearm_fraction <= 1.0:
            raise ConfigurationError("rearm_fraction must be in [0, 1]")
        if self.cooldown < 0:
            raise ConfigurationError("cooldown must be non-negative")
        if self.min_std <= 0:
            raise ConfigurationError("min_std must be positive")


@dataclass(frozen=True)
class DriftTrigger:
    """A change-point alarm raised by one detector channel."""

    channel: str
    observation: int
    value: float
    score: float
    baseline_mean: float
    baseline_std: float


class CusumDetector:
    """Two-sided standardized CUSUM with warmup baseline and hysteresis.

    The detector is deliberately tiny and allocation-free per observation:
    the adaptive policy calls :meth:`observe` once per processed segment.
    """

    def __init__(self, config: Optional[DriftConfig] = None, channel: str = "signal"):
        self.config = config or DriftConfig()
        self.channel = str(channel)
        self.reset()

    def reset(self) -> None:
        """Forget everything, including the warmup baseline."""
        self._burned = 0
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.baseline_mean = 0.0
        self.baseline_std = 0.0
        self.s_pos = 0.0
        self.s_neg = 0.0
        self.s_var = 0.0
        self.armed = True
        self._since_trigger = 0
        self.observations = 0
        self.triggers = 0

    # ------------------------------------------------------------------ #
    @property
    def warmed_up(self) -> bool:
        return self._count >= self.config.warmup

    @property
    def score(self) -> float:
        """Largest of the accumulated change scores."""
        return max(self.s_pos, self.s_neg, self.s_var)

    def observe(self, value: float) -> Optional[DriftTrigger]:
        """Feed one observation; returns a trigger if a change point fired."""
        value = float(value)
        self.observations += 1
        config = self.config
        if self._burned < config.burn_in:
            self._burned += 1
            return None
        if self._count < config.warmup:
            # Welford's online mean/variance over the warmup window.
            self._count += 1
            delta = value - self._mean
            self._mean += delta / self._count
            self._m2 += delta * (value - self._mean)
            if self._count == config.warmup:
                variance = self._m2 / (self._count - 1)
                self.baseline_mean = self._mean
                self.baseline_std = max(
                    math.sqrt(max(variance, 0.0)) * config.std_inflation,
                    config.min_std,
                )
            return None

        z = (value - self.baseline_mean) / self.baseline_std
        k = config.drift_allowance
        self.s_pos = max(0.0, self.s_pos + z - k)
        self.s_neg = max(0.0, self.s_neg - z - k)
        if config.track_variance:
            folded = (abs(z) - _FOLDED_MEAN) / _FOLDED_STD
            self.s_var = max(0.0, self.s_var + folded - config.variance_allowance)
        self._since_trigger += 1

        if not self.armed:
            if (
                self._since_trigger >= config.cooldown
                and self.score <= config.rearm_fraction * config.threshold
            ):
                self.armed = True
            return None
        if self.score >= config.threshold:
            trigger = DriftTrigger(
                channel=self.channel,
                observation=self.observations,
                value=value,
                score=self.score,
                baseline_mean=self.baseline_mean,
                baseline_std=self.baseline_std,
            )
            self.triggers += 1
            self.s_pos = 0.0
            self.s_neg = 0.0
            self.s_var = 0.0
            self.armed = False
            self._since_trigger = 0
            return trigger
        return None


#: Detector defaults for the classification-confidence channel: one sample
#: per segment, so a generous warmup and cooldown are cheap.
DEFAULT_CONFIDENCE_CONFIG = DriftConfig()

#: Detector defaults for the reported-quality channel (also per-segment).
#: Reported quality is the paper's only always-available online quality
#: signal; a sustained drop below the warmup baseline means the deployed
#: knob plan no longer fits the content.
DEFAULT_QUALITY_CONFIG = DriftConfig()

#: Detector defaults for the forecast-error channel: samples arrive once per
#: check window (dozens of segments apart), so the warmup must be short and
#: ``min_std`` acts as an absolute MAE noise floor instead of the relative
#: one estimated from a handful of samples.
DEFAULT_FORECAST_CONFIG = DriftConfig(
    warmup=6,
    threshold=8.0,
    track_variance=False,
    cooldown=6,
    min_std=0.02,
)


class DriftMonitor:
    """One CUSUM detector per observable online signal.

    Args:
        confidence: config for the per-segment classification-residual
            channel (defaults to :data:`DEFAULT_CONFIDENCE_CONFIG`).
        forecast: config for the windowed forecast-MAE channel (defaults to
            :data:`DEFAULT_FORECAST_CONFIG`).
        quality: config for the per-segment reported-quality channel
            (defaults to :data:`DEFAULT_QUALITY_CONFIG`).
    """

    def __init__(
        self,
        confidence: Optional[DriftConfig] = None,
        forecast: Optional[DriftConfig] = None,
        quality: Optional[DriftConfig] = None,
    ):
        self._confidence_config = confidence or DEFAULT_CONFIDENCE_CONFIG
        self._forecast_config = forecast or DEFAULT_FORECAST_CONFIG
        self._quality_config = quality or DEFAULT_QUALITY_CONFIG
        self.confidence = CusumDetector(self._confidence_config, channel="confidence")
        self.forecast = CusumDetector(self._forecast_config, channel="forecast")
        self.quality = CusumDetector(self._quality_config, channel="quality")
        self.triggers: List[DriftTrigger] = []

    def observe_confidence(self, residual: float) -> Optional[DriftTrigger]:
        """Feed one classification residual; returns the trigger if fired."""
        trigger = self.confidence.observe(residual)
        if trigger is not None:
            self.triggers.append(trigger)
        return trigger

    def observe_quality(self, reported_quality: float) -> Optional[DriftTrigger]:
        """Feed one segment's reported quality; returns the trigger if fired."""
        trigger = self.quality.observe(reported_quality)
        if trigger is not None:
            self.triggers.append(trigger)
        return trigger

    def observe_forecast_error(self, mae: float) -> Optional[DriftTrigger]:
        """Feed one windowed forecast MAE; returns the trigger if fired."""
        trigger = self.forecast.observe(mae)
        if trigger is not None:
            self.triggers.append(trigger)
        return trigger

    def rebaseline(self) -> None:
        """Restart every channel's warmup (call after adopting a re-fit)."""
        self.confidence.reset()
        self.forecast.reset()
        self.quality.reset()

    @property
    def trigger_count(self) -> int:
        return len(self.triggers)
