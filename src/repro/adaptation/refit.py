"""Staged incremental re-fits of the offline phase, driven by drift triggers.

A re-fit is not a new algorithm — it is the *same* :class:`OfflinePipeline`
run again with the history-labeling window extended to "now" and the previous
forecaster offered as a warm start.  Everything else falls out of the
content-addressed :class:`~repro.core.offline.StageCache`:

* ``sample_segments``, ``filter_configurations`` and ``content_categories``
  see identical key material, so they are served from the cache (profiles
  unchanged);
* ``label_history`` keys on the extended window and re-runs, producing the
  longer label series;
* ``train_forecaster`` keys on the new labels digest (and the warm-start
  weight digests), so it re-runs as a short fine-tune instead of a cold fit.

The :class:`StagedRefitter` packages the pipeline construction plus the
bookkeeping (:class:`RefitReport`) the adaptive policy reports as metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ConfigurationError, NotFittedError
from repro.cluster.resources import CloudSpec
from repro.core.forecaster import ContentForecaster
from repro.core.interfaces import VETLWorkload
from repro.core.offline import (
    EvaluationCache,
    OfflineFitParams,
    OfflineFitResult,
    OfflinePipeline,
)
from repro.video.stream import SyntheticVideoSource

SECONDS_PER_DAY = 86_400.0

#: Stages a profiles-unchanged re-fit is expected to serve from the cache.
REUSED_STAGES = ("sample_segments", "filter_configurations", "content_categories")

#: Stages a re-fit actually re-runs (the extended window invalidates them).
REFIT_STAGES = ("label_history", "train_forecaster")


@dataclass
class RefitReport:
    """What one staged re-fit did, summarized for telemetry.

    Attributes:
        refit_time_seconds: simulated stream time the re-fit was issued at.
        label_window_end_days: where the labeling window was extended to.
        warm_started: whether the forecaster fine-tuned from previous weights.
        stage_cache_hits: per-stage cache-hit flags from the pipeline report.
        stage_runtimes_seconds: per-stage wall runtimes from the pipeline.
        wall_seconds: total wall time of the re-fit.
    """

    refit_time_seconds: float
    label_window_end_days: float
    warm_started: bool
    stage_cache_hits: Dict[str, bool] = field(default_factory=dict)
    stage_runtimes_seconds: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def cache_hit_count(self) -> int:
        """Number of stages served from the stage cache."""
        return sum(1 for hit in self.stage_cache_hits.values() if hit)


class StagedRefitter:
    """Re-runs the offline pipeline incrementally against its stage cache.

    Built once per adaptive policy (usually via :meth:`from_skyscraper`) and
    invoked on every drift trigger.  The refitter keeps one shared
    :class:`EvaluationCache` so repeated re-fits do not re-evaluate segments
    the previous re-fit already processed.

    Args:
        workload: the user's V-ETL job.
        source: the video source the original fit ran on (re-fits label the
            *shared* recorded stream, consistent with fleet-wide artifacts).
        cores: on-premise cores of the provisioned machine.
        cloud: cloud specification for placement profiling.
        n_categories: requested number of content categories.
        categorizer_method: ``"kmeans"`` or ``"gmm"``.
        forecaster_splits: number of forecaster input histograms.
        planned_interval_seconds: the planner period the forecaster predicts.
        seed: the original fit's base seed (keeps cache keys aligned).
        params: the original fit's :class:`OfflineFitParams`.
        stage_cache_dir: the stage cache the original fit populated; without
            it a re-fit still works but re-runs every stage.
        fine_tune_epochs: forecaster epochs when a warm start is accepted
            (cold re-fits use the forecaster's own default).
        evaluation_cache: optional pre-existing shared evaluation cache.
    """

    def __init__(
        self,
        workload: VETLWorkload,
        source: SyntheticVideoSource,
        cores: int,
        cloud: Optional[CloudSpec] = None,
        n_categories: int = 4,
        categorizer_method: str = "kmeans",
        forecaster_splits: int = 8,
        planned_interval_seconds: float = 2 * SECONDS_PER_DAY,
        seed: int = 0,
        params: Optional[OfflineFitParams] = None,
        stage_cache_dir: Optional[Union[str, Path]] = None,
        fine_tune_epochs: int = 60,
        evaluation_cache: Optional[EvaluationCache] = None,
    ):
        if fine_tune_epochs < 1:
            raise ConfigurationError("fine_tune_epochs must be at least 1")
        self.workload = workload
        self.source = source
        self.cores = int(cores)
        self.cloud = cloud
        self.n_categories = n_categories
        self.categorizer_method = categorizer_method
        self.forecaster_splits = forecaster_splits
        self.planned_interval_seconds = planned_interval_seconds
        self.seed = seed
        self.params = params or OfflineFitParams()
        self.stage_cache_dir = Path(stage_cache_dir) if stage_cache_dir is not None else None
        self.fine_tune_epochs = int(fine_tune_epochs)
        # `if ... is None` rather than `or`: an empty shared cache is falsy.
        self.evaluations = (
            evaluation_cache if evaluation_cache is not None else EvaluationCache(workload)
        )
        self.reports: list[RefitReport] = []

    @classmethod
    def from_skyscraper(
        cls,
        skyscraper,
        stage_cache_dir: Optional[Union[str, Path]] = None,
        fine_tune_epochs: int = 60,
    ) -> "StagedRefitter":
        """Build a refitter that reproduces ``skyscraper``'s last ``fit``.

        The Skyscraper instance must have been fitted in-process (artifact
        restores do not record how the fit was produced).
        """
        if skyscraper.fit_params is None or skyscraper.fit_source is None:
            raise NotFittedError(
                "StagedRefitter.from_skyscraper needs a Skyscraper whose fit() "
                "ran in this process; instances restored from artifacts do not "
                "record their fit parameters"
            )
        return cls(
            workload=skyscraper.workload,
            source=skyscraper.fit_source,
            cores=skyscraper.resources.cores,
            cloud=skyscraper.cloud,
            n_categories=skyscraper.n_categories,
            categorizer_method=skyscraper.categorizer_method,
            forecaster_splits=skyscraper.forecaster_splits,
            planned_interval_seconds=skyscraper.planned_interval_seconds,
            seed=skyscraper.seed,
            params=skyscraper.fit_params,
            stage_cache_dir=(
                stage_cache_dir
                if stage_cache_dir is not None
                else skyscraper.fit_stage_cache_dir
            ),
            fine_tune_epochs=fine_tune_epochs,
        )

    def refit(
        self,
        now_seconds: float,
        warm_start: Optional[ContentForecaster] = None,
    ) -> OfflineFitResult:
        """Run one staged re-fit with labels extended up to ``now_seconds``.

        Returns the full :class:`OfflineFitResult`; the matching
        :class:`RefitReport` is appended to :attr:`reports`.
        """
        end_days = max(float(now_seconds) / SECONDS_PER_DAY, self.params.unlabeled_days)
        params = replace(self.params, label_window_end_days=end_days)
        pipeline = OfflinePipeline(
            workload=self.workload,
            source=self.source,
            cores=self.cores,
            cloud=self.cloud,
            n_categories=self.n_categories,
            categorizer_method=self.categorizer_method,
            forecaster_splits=self.forecaster_splits,
            planned_interval_seconds=self.planned_interval_seconds,
            seed=self.seed,
            params=params,
            evaluation_cache=self.evaluations,
            stage_cache_dir=self.stage_cache_dir,
            warm_start_forecaster=warm_start,
            forecaster_epochs=self.fine_tune_epochs if warm_start is not None else None,
        )
        started = time.perf_counter()
        result = pipeline.run()
        wall = time.perf_counter() - started
        warm_started = bool(
            warm_start is not None
            and pipeline._warm_start_candidate(result.categorizer) is not None
        )
        self.reports.append(
            RefitReport(
                refit_time_seconds=float(now_seconds),
                label_window_end_days=end_days,
                warm_started=warm_started,
                stage_cache_hits=dict(result.report.stage_cache_hits),
                stage_runtimes_seconds=dict(result.report.stage_runtimes_seconds),
                wall_seconds=wall,
            )
        )
        return result
