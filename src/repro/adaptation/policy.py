"""The adaptive online policy: Skyscraper + drift monitor + staged re-fits.

:class:`AdaptiveSkyscraperPolicy` is a strict superset of
:class:`~repro.core.policy.SkyscraperPolicy`.  Every adaptive code path is
gated on ``drift_monitor is not None``; with the monitor disabled the policy
is bit-for-bit the static policy (a property the regression tests pin), so
the adaptive machinery can ship enabled-by-flag without perturbing existing
results.

Per processed segment the policy feeds the categorizer's classification
residual to the monitor's confidence channel; every ``forecast_check_segments``
segments it compares the realized category histogram against the forecast the
current plan was built from and feeds the MAE to the forecast channel.  On a
trigger it re-plans immediately and, when a :class:`StagedRefitter` is
attached, first runs a staged incremental re-fit and adopts the refreshed
categorizer and (warm-started) forecaster — the profiles are untouched, which
is exactly why the re-fit's sampling/clustering stages come back as stage-
cache hits.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

import numpy as np

from repro.adaptation.drift import DriftConfig, DriftMonitor, DriftTrigger
from repro.adaptation.refit import RefitReport, StagedRefitter
from repro.core.engine import DecisionContext, PolicyDecision
from repro.core.interfaces import SegmentOutcome
from repro.core.offline import OfflineFitResult
from repro.core.policy import SkyscraperPolicy


class AdaptiveSkyscraperPolicy(SkyscraperPolicy):
    """Skyscraper's online policy with drift-triggered re-planning/re-fitting.

    Accepts every :class:`SkyscraperPolicy` argument plus:

    Args:
        drift_monitor: the CUSUM monitor; ``None`` disables all adaptive
            behavior (the policy is then identical to the static one).
        refitter: staged re-fitter invoked on triggers; ``None`` degrades to
            monitor-only mode (triggers force an early re-plan but no re-fit).
        max_refits: cap on re-fits per run (re-planning is not capped).
        forecast_check_segments: how many processed segments between forecast
            -error checks (also the realized-histogram window length).
    """

    name = "skyscraper_adaptive"

    def __init__(
        self,
        *args,
        drift_monitor: Optional[DriftMonitor] = None,
        refitter: Optional[StagedRefitter] = None,
        max_refits: int = 2,
        forecast_check_segments: int = 32,
        **kwargs,
    ):
        self.drift_monitor = drift_monitor
        self.refitter = refitter
        self.max_refits = int(max_refits)
        self.forecast_check_segments = max(int(forecast_check_segments), 1)
        super().__init__(*args, **kwargs)

        initial = kwargs.get("initial_forecast")
        if initial is not None:
            self._plan_forecast: Optional[np.ndarray] = np.asarray(initial, dtype=float)
        else:
            n = self.categorizer.actual_categories
            self._plan_forecast = np.full(n, 1.0 / n)
        self._recent_categories: Deque[int] = deque(maxlen=self.forecast_check_segments)
        self._observed_segments = 0
        self._now: Optional[float] = None
        self.drift_triggers = 0
        self.refits = 0
        self.trigger_log: List[DriftTrigger] = []
        self._refit_reports: List[RefitReport] = []

    # ------------------------------------------------------------------ #
    # Policy protocol
    # ------------------------------------------------------------------ #
    def decide(self, context: DecisionContext) -> PolicyDecision:
        self._now = context.decision_time
        return super().decide(context)

    def observe(self, outcome: SegmentOutcome, decision: PolicyDecision) -> None:
        if self.drift_monitor is None:
            return None
        score = self.categorizer.classification_score(
            decision.configuration_index, outcome.reported_quality
        )
        self._recent_categories.append(score.category)
        self._observed_segments += 1
        trigger = self.drift_monitor.observe_confidence(score.residual)
        if trigger is None:
            trigger = self.drift_monitor.observe_quality(outcome.reported_quality)
        if trigger is None and self._observed_segments % self.forecast_check_segments == 0:
            mae = self._forecast_error()
            if mae is not None:
                trigger = self.drift_monitor.observe_forecast_error(mae)
        if trigger is not None:
            self._on_drift(trigger)
        return None

    # ------------------------------------------------------------------ #
    # Drift handling
    # ------------------------------------------------------------------ #
    def _forecast_error(self) -> Optional[float]:
        """MAE between the plan's forecast and the realized recent histogram."""
        forecast = self._plan_forecast
        n_categories = self.categorizer.actual_categories
        if forecast is None or forecast.size != n_categories:
            return None
        if len(self._recent_categories) < self.forecast_check_segments:
            return None
        realized = self._labels_to_histogram(list(self._recent_categories), n_categories)
        return float(np.mean(np.abs(realized - forecast)))

    def _on_drift(self, trigger: DriftTrigger) -> None:
        self.drift_triggers += 1
        self.trigger_log.append(trigger)
        now = self._now if self._now is not None else 0.0
        if self.refitter is not None and self.refits < self.max_refits:
            result = self.refitter.refit(now, warm_start=self.forecaster)
            self._refit_reports.append(self.refitter.reports[-1])
            self._adopt(result)
            self.refits += 1
        # Whether or not a re-fit ran, the current plan was built for the old
        # content mix: re-plan now and restart the planning clock.
        self._replan(now)
        self._next_planning_time = now + self.planned_interval_seconds
        self.drift_monitor.rebaseline()
        self._recent_categories.clear()

    def _adopt(self, result: OfflineFitResult) -> None:
        """Install a re-fit's categorizer/forecaster; profiles stay in place."""
        self.categorizer = result.categorizer
        self.switcher.categorizer = result.categorizer
        if result.forecaster is not None:
            self.forecaster = result.forecaster
        # Cache-hit re-fits reproduce the same centers, but refresh the
        # planner's per-category qualities in case the clustering moved.
        self.profiles.set_category_qualities(result.categorizer.centers.T)

    def _forecast(self, now: float) -> np.ndarray:
        forecast = super()._forecast(now)
        self._plan_forecast = np.asarray(forecast, dtype=float)
        return forecast

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def ingestion_metrics(self) -> dict:
        """End-of-run counters surfaced into ``IngestionResult.policy_metrics``."""
        if self.drift_monitor is None:
            return {}
        return {
            "drift_triggers": float(self.drift_triggers),
            "refits": float(self.refits),
            "refit_stage_cache_hits": float(
                sum(report.cache_hit_count for report in self._refit_reports)
            ),
            "refit_wall_seconds": float(
                sum(report.wall_seconds for report in self._refit_reports)
            ),
            "replans": float(self.replans),
            "drift_confidence_observations": float(
                self.drift_monitor.confidence.observations
            ),
            "drift_forecast_observations": float(self.drift_monitor.forecast.observations),
            "drift_quality_observations": float(self.drift_monitor.quality.observations),
        }


def build_adaptive_policy(
    skyscraper,
    segment_seconds: float,
    monitor: bool = True,
    refit: bool = True,
    confidence: Optional[DriftConfig] = None,
    forecast: Optional[DriftConfig] = None,
    quality: Optional[DriftConfig] = None,
    max_refits: int = 2,
    forecast_check_segments: int = 32,
    fine_tune_epochs: int = 60,
    stage_cache_dir=None,
) -> AdaptiveSkyscraperPolicy:
    """Assemble an adaptive policy from a fitted :class:`Skyscraper`.

    ``monitor=False`` yields the static-equivalent policy (useful for parity
    tests); ``refit=False`` — or a Skyscraper restored from artifacts, which
    cannot rebuild its fit pipeline — yields monitor-only adaptation where
    triggers force early re-plans without re-fitting.
    """
    drift_monitor = (
        DriftMonitor(confidence=confidence, forecast=forecast, quality=quality)
        if monitor
        else None
    )
    refitter = None
    if (
        monitor
        and refit
        and skyscraper.fit_params is not None
        and skyscraper.fit_source is not None
    ):
        refitter = StagedRefitter.from_skyscraper(
            skyscraper,
            stage_cache_dir=stage_cache_dir,
            fine_tune_epochs=fine_tune_epochs,
        )
    return skyscraper.build_policy(
        segment_seconds,
        policy_class=AdaptiveSkyscraperPolicy,
        drift_monitor=drift_monitor,
        refitter=refitter,
        max_refits=max_refits,
        forecast_check_segments=forecast_check_segments,
    )
