"""The pluggable policy registry.

Every system the evaluation compares — Skyscraper itself and each baseline —
is registered here as a *policy factory* under a stable name.  A factory
receives a :class:`RunContext` (the fitted bundle, the re-provisioned
Skyscraper instance, its profiles and resources, and the experiment seed) and
returns an engine policy.  The :class:`~repro.experiments.runner.ExperimentRunner`
looks systems up by name, so a new baseline becomes available to every
benchmark and sweep by registering a factory — no harness changes needed::

    from repro.registry import register_policy

    @register_policy("my-baseline", description="always the cheapest knobs")
    def _my_baseline(context):
        cheapest = context.profiles.cheapest()
        return StaticPolicy(context.profiles, cheapest)

The built-in names are ``"skyscraper"``, ``"static"``, ``"chameleon*"``
(alias ``"chameleon"``), ``"videostorm"``, ``"optimum"`` and ``"idealized"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.adaptation import DriftConfig, build_adaptive_policy
from repro.baselines.chameleon import ChameleonStarPolicy
from repro.baselines.idealized import time_of_day_forecast
from repro.baselines.optimum import optimum_assignment
from repro.baselines.static import StaticPolicy, best_static_configuration
from repro.baselines.videostorm import VideoStormPolicy
from repro.core.engine import DecisionContext, Policy, PolicyDecision
from repro.core.interfaces import SegmentOutcome, VETLWorkload
from repro.core.profiles import ProfileSet
from repro.core.skyscraper import Skyscraper, SkyscraperResources
from repro.errors import ConfigurationError
from repro.video.stream import SyntheticVideoSource

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.experiments.runner import SystemBundle

SECONDS_PER_DAY = 86_400.0

#: A policy factory: ``factory(context, **options) -> Policy``.
PolicyFactory = Callable[..., Policy]


@dataclass
class RunContext:
    """Everything a policy factory may use to build its policy.

    Attributes:
        bundle: the fitted workload bundle (setup, config, reference
            Skyscraper instance).
        skyscraper: the Skyscraper instance re-provisioned for this run's
            hardware (its profiles reflect the run's core count and cloud
            budget).
        resources: the provisioned resources of this run.
        seed: the experiment seed.
    """

    bundle: "SystemBundle"
    skyscraper: Skyscraper
    resources: SkyscraperResources
    seed: int

    # ------------------------------------------------------------------ #
    # Convenience accessors used by most factories
    # ------------------------------------------------------------------ #
    @property
    def workload(self) -> VETLWorkload:
        """The V-ETL workload the bundle was fitted on."""
        return self.bundle.setup.workload

    @property
    def source(self) -> SyntheticVideoSource:
        """The bundle's video source."""
        return self.bundle.setup.source

    @property
    def profiles(self) -> ProfileSet:
        """The fitted placement profiles, re-provisioned for this run."""
        if self.skyscraper.profiles is None:
            raise ConfigurationError("RunContext.skyscraper has no fitted profiles")
        return self.skyscraper.profiles

    @property
    def segment_seconds(self) -> float:
        """Length of one video segment in seconds."""
        return self.source.segment_seconds

    @property
    def online_start(self) -> float:
        """Start of the online window (seconds since stream start)."""
        return self.bundle.config.online_start

    @property
    def online_end(self) -> float:
        """End of the online window (seconds since stream start)."""
        return self.bundle.config.online_end


@dataclass(frozen=True)
class PolicySpec:
    """A registered policy: its canonical name, factory and capabilities.

    Attributes:
        name: canonical registry name (also used as the ``system`` label of
            result rows).
        factory: builds the policy from a :class:`RunContext`.
        uses_cloud: whether the system spends cloud credits; systems that do
            not are re-provisioned with a zero cloud budget so comparisons
            match the paper's setup.
        description: one-line human-readable description.
        aliases: alternative lookup names.
    """

    name: str
    factory: PolicyFactory
    uses_cloud: bool = False
    description: str = ""
    aliases: Tuple[str, ...] = ()


_REGISTRY: Dict[str, PolicySpec] = {}
_ALIASES: Dict[str, str] = {}


def register_policy(
    name: str,
    *,
    uses_cloud: bool = False,
    description: str = "",
    aliases: Tuple[str, ...] = (),
) -> Callable[[PolicyFactory], PolicyFactory]:
    """Decorator registering a policy factory under ``name``.

    Raises :class:`ConfigurationError` when the name (or an alias) is already
    taken, so typos do not silently shadow an existing system.
    """
    if not name:
        raise ConfigurationError("policy name must be non-empty")

    def decorate(factory: PolicyFactory) -> PolicyFactory:
        """Register ``factory`` under the decorator's name and aliases."""
        for candidate in (name, *aliases):
            if candidate in _REGISTRY or candidate in _ALIASES:
                raise ConfigurationError(
                    f"policy {candidate!r} is already registered"
                )
        spec = PolicySpec(
            name=name,
            factory=factory,
            uses_cloud=uses_cloud,
            description=description,
            aliases=tuple(aliases),
        )
        _REGISTRY[name] = spec
        for alias in aliases:
            _ALIASES[alias] = name
        return factory

    return decorate


def ensure_registered(spec: PolicySpec) -> None:
    """Idempotently register ``spec`` unless its name is already taken.

    Process-pool workers re-import this module and therefore only see the
    built-in registrations; the experiment runner ships the specs of the
    systems it sweeps to each worker and re-registers them through this
    helper, so policies registered at runtime also work under the ``spawn``
    start method.
    """
    if spec.name in _REGISTRY:
        return
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES.setdefault(alias, spec.name)


def unregister_policy(name: str) -> None:
    """Remove a registered policy (mainly for tests of the registry itself)."""
    spec = policy_spec(name)
    del _REGISTRY[spec.name]
    for alias in spec.aliases:
        _ALIASES.pop(alias, None)


def policy_names() -> List[str]:
    """Canonical names of every registered policy, sorted."""
    return sorted(_REGISTRY)


def policy_spec(name: str) -> PolicySpec:
    """The :class:`PolicySpec` registered under ``name`` (or an alias)."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise ConfigurationError(
            f"unknown policy {name!r}; registered policies: {policy_names()}"
        )
    return _REGISTRY[canonical]


def create_policy(name: str, context: RunContext, **options) -> Policy:
    """Instantiate the policy registered under ``name`` for ``context``."""
    return policy_spec(name).factory(context, **options)


# --------------------------------------------------------------------- #
# Offline assignments replayed through the engine
# --------------------------------------------------------------------- #
class AssignmentReplayPolicy:
    """Replays a precomputed per-segment configuration assignment.

    The Optimum and the idealized Appendix-B design are offline constructs:
    they assign a configuration to every segment of the window ahead of time.
    Wrapping the assignment in an engine policy runs them through the same
    ingestion engine as every online system, so their results carry the same
    buffer/lag semantics.
    """

    def __init__(self, name: str, profiles: ProfileSet, assignment: Mapping[int, int]):
        """Wrap a ``segment_index -> configuration_index`` assignment."""
        self.name = name
        self.profiles = profiles
        self.assignment = dict(assignment)
        self._fallback = profiles.index_of(profiles.cheapest().configuration)

    def decide(self, context: DecisionContext) -> PolicyDecision:
        """The precomputed configuration for this segment (cheapest on gaps)."""
        index = self.assignment.get(context.segment.segment_index, self._fallback)
        profile = self.profiles[index]
        return PolicyDecision(
            configuration_index=index,
            profile=profile,
            placement=profile.on_prem_placement,
        )

    def observe(self, outcome: SegmentOutcome, decision: PolicyDecision) -> None:
        """Replay policies learn nothing online; observations are ignored."""
        return None


def _online_segments(context: RunContext) -> list:
    return list(context.source.segments(context.online_start, context.online_end))


def _default_budget(context: RunContext, n_segments: int) -> float:
    resources = context.resources
    return (
        resources.cores
        * context.segment_seconds
        * resources.utilization
        * n_segments
    )


# --------------------------------------------------------------------- #
# Built-in systems
# --------------------------------------------------------------------- #
@register_policy(
    "skyscraper",
    uses_cloud=True,
    description="content-adaptive knob tuning with throughput guarantees (the paper)",
)
def _skyscraper_factory(context: RunContext) -> Policy:
    """The paper's system: the fitted Skyscraper's engine policy."""
    return context.skyscraper.build_policy(context.segment_seconds)


@register_policy(
    "skyscraper_adaptive",
    uses_cloud=True,
    aliases=("adaptive",),
    description="Skyscraper + CUSUM drift monitor with staged incremental re-fits",
)
def _skyscraper_adaptive_factory(
    context: RunContext,
    monitor: bool = True,
    refit: bool = True,
    confidence: Optional[DriftConfig] = None,
    forecast: Optional[DriftConfig] = None,
    quality: Optional[DriftConfig] = None,
    max_refits: int = 2,
    forecast_check_segments: int = 32,
    fine_tune_epochs: int = 60,
) -> Policy:
    """Skyscraper wrapped with the CUSUM drift monitor and staged re-fits."""
    return build_adaptive_policy(
        context.skyscraper,
        context.segment_seconds,
        monitor=monitor,
        refit=refit,
        confidence=confidence,
        forecast=forecast,
        quality=quality,
        max_refits=max_refits,
        forecast_check_segments=forecast_check_segments,
        fine_tune_epochs=fine_tune_epochs,
    )


#: Systems that have a drop-in adaptive variant (``--adaptive`` in the
#: service maps job systems through this table).
ADAPTIVE_VARIANTS: Dict[str, str] = {"skyscraper": "skyscraper_adaptive"}


def adaptive_system_name(name: str) -> str:
    """The adaptive variant of ``name``; names without one pass through
    (alias-resolved, so callers see the canonical registry name)."""
    canonical = _ALIASES.get(name, name)
    return ADAPTIVE_VARIANTS.get(canonical, canonical)


@register_policy(
    "static",
    description="one fixed knob configuration: the best real-time one (Section 5.3)",
)
def _static_factory(
    context: RunContext, configuration_index: Optional[int] = None
) -> Policy:
    """The best real-time static configuration (or an explicit index)."""
    profiles = context.profiles
    if configuration_index is None:
        profile = best_static_configuration(
            profiles, context.segment_seconds, context.resources.cores
        )
    else:
        profile = profiles[configuration_index]
    return StaticPolicy(profiles, profile)


@register_policy(
    "chameleon*",
    aliases=("chameleon",),
    description="Chameleon adapted with a buffer: content adaptive, no throughput guarantee",
)
def _chameleon_factory(
    context: RunContext,
    profiling_period_seconds: float = 480.0,
    quality_tolerance: float = 0.9,
) -> Policy:
    """Chameleon* — content adaptive via periodic re-profiling, buffered."""
    return ChameleonStarPolicy(
        context.workload,
        context.profiles,
        profiling_period_seconds=profiling_period_seconds,
        quality_tolerance=quality_tolerance,
    )


@register_policy(
    "videostorm",
    description="query-load adaptive only; degenerates to the best real-time configuration",
)
def _videostorm_factory(context: RunContext, safety_margin: float = 0.9) -> Policy:
    """VideoStorm adapted — degenerates to the best real-time configuration."""
    return VideoStormPolicy(
        context.profiles, context.segment_seconds, safety_margin=safety_margin
    )


@register_policy(
    "optimum",
    description="ground-truth knapsack upper bound (Section 5.4), replayed through the engine",
)
def _optimum_factory(
    context: RunContext, budget_core_seconds: Optional[float] = None
) -> Policy:
    """Ground-truth knapsack assignment replayed through the engine."""
    segments = _online_segments(context)
    if budget_core_seconds is None:
        budget_core_seconds = _default_budget(context, len(segments))
    result = optimum_assignment(
        context.workload, context.profiles, segments, budget_core_seconds
    )
    return AssignmentReplayPolicy("optimum", context.profiles, result.choices)


@register_policy(
    "idealized",
    description="Appendix B.1 idealized per-slot forecasting design (time-of-day forecasts)",
)
def _idealized_factory(
    context: RunContext,
    budget_core_seconds: Optional[float] = None,
    history_days: float = 2.0,
    bucket_seconds: float = 900.0,
    history_stride_segments: int = 60,
) -> Policy:
    """Appendix B.1 idealized per-slot design replayed through the engine."""
    segments = _online_segments(context)
    if budget_core_seconds is None:
        budget_core_seconds = _default_budget(context, len(segments))
    source = context.source
    history_start = max(context.online_start - history_days * SECONDS_PER_DAY, 0.0)
    first = int(history_start / source.segment_seconds)
    last = int(context.online_start / source.segment_seconds)
    stride = max(int(history_stride_segments), 1)
    history = [source.segment_at(index) for index in range(first, last, stride)]
    forecast = time_of_day_forecast(
        context.workload, context.profiles, history, bucket_seconds
    )
    result = optimum_assignment(
        context.workload,
        context.profiles,
        segments,
        budget_core_seconds,
        quality_fn=forecast,
    )
    return AssignmentReplayPolicy("idealized", context.profiles, result.choices)
