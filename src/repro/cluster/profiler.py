"""Placement profiling: Pareto-good placements of a knob configuration's DAG.

In the offline phase Skyscraper profiles, for every knob configuration, how
long different placements of its task graph take and how much cloud money
they spend, then keeps only the placements on the cost-runtime Pareto
frontier (Section 3.1, Appendix A.2).  The paper trains a GNN+RL placement
optimizer (PlaceTo); for the small DAGs of the evaluated workloads an
enumeration/heavy-suffix search over placements simulated with the Appendix-M
simulator finds the same frontier, which is the substitution documented in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from repro.errors import ConfigurationError
from repro.cluster.resources import CloudSpec
from repro.cluster.simulator import PlacementSimulator
from repro.ml.pareto import pareto_front
from repro.vision.dag import TaskGraph


@dataclass(frozen=True)
class PlacementProfile:
    """Profiled behaviour of one placement of one knob configuration's DAG.

    Attributes:
        placement: mapping from task name to ``"on_prem"`` or ``"cloud"``.
        runtime_seconds: steady-state time the placement needs per segment
            when segments are processed back to back (the throughput bound:
            the busiest resource — on-premise cores, the uplink, or the cloud
            concurrency — dictates the sustainable rate).  This is the number
            the knob switcher compares against the segment duration.
        makespan_seconds: simulated makespan of one segment in isolation
            (the Appendix-M cold-start estimate, used by the simulator
            accuracy experiments).
        on_prem_core_seconds: on-premise work of one segment.
        cloud_core_seconds: cloud compute of one segment.
        cloud_dollars: cloud spend of one segment.
        upload_bytes: uplink bytes of one segment.
    """

    placement: Mapping[str, str]
    runtime_seconds: float
    makespan_seconds: float
    on_prem_core_seconds: float
    cloud_core_seconds: float
    cloud_dollars: float
    upload_bytes: int

    @property
    def cloud_task_count(self) -> int:
        return sum(1 for location in self.placement.values() if location == "cloud")

    @property
    def is_fully_on_prem(self) -> bool:
        return self.cloud_task_count == 0


def profile_placements(
    graph: TaskGraph,
    cores: int,
    cloud: Optional[CloudSpec] = None,
    keep_pareto_only: bool = True,
    max_tasks_for_full_enumeration: int = 12,
) -> List[PlacementProfile]:
    """Profile candidate placements of ``graph`` and keep the Pareto-good ones.

    Args:
        graph: the knob configuration's task graph for one segment.
        cores: on-premise cores available for the graph.
        cloud: cloud specification; if its daily budget is zero only the
            fully on-premise placement is profiled.
        keep_pareto_only: drop placements not on the (cloud cost, -runtime)
            Pareto frontier, as the offline phase does.
        max_tasks_for_full_enumeration: forwarded to
            :meth:`TaskGraph.enumerate_placements`.

    Returns:
        Profiles sorted by increasing cloud cost (the fully on-premise
        placement first), which is the order the knob switcher walks when it
        looks for the cheapest placement that does not overflow the buffer.
    """
    if cores < 1:
        raise ConfigurationError("cores must be positive")
    cloud = cloud or CloudSpec()
    simulator = PlacementSimulator(cores=cores, cloud=cloud)

    cloud_disabled = cloud.daily_budget_dollars is not None and cloud.daily_budget_dollars <= 0
    if cloud_disabled:
        candidate_placements = [graph.all_on_prem_placement()]
    else:
        candidate_placements = graph.enumerate_placements(max_tasks_for_full_enumeration)

    profiles: List[PlacementProfile] = []
    for placement in candidate_placements:
        execution = simulator.simulate(graph, placement)
        # Ingestion processes segments back to back, so the sustainable time
        # per segment is bounded by the busiest resource rather than by the
        # cold-start makespan of a single segment.
        throughput_seconds = max(
            execution.on_prem_core_seconds / cores,
            execution.upload_bytes / cloud.uplink_bytes_per_second,
            (execution.cloud_core_seconds + cloud.round_trip_seconds)
            / cloud.max_concurrency
            if execution.cloud_core_seconds > 0
            else 0.0,
        )
        profiles.append(
            PlacementProfile(
                placement=dict(placement),
                runtime_seconds=max(throughput_seconds, 1e-9),
                makespan_seconds=execution.makespan_seconds,
                on_prem_core_seconds=execution.on_prem_core_seconds,
                cloud_core_seconds=execution.cloud_core_seconds,
                cloud_dollars=execution.cloud_dollars,
                upload_bytes=execution.upload_bytes,
            )
        )

    if keep_pareto_only and len(profiles) > 1:
        # Pareto criterion: minimize cloud dollars, minimize runtime.  The
        # pareto_front helper minimizes cost and maximizes value, so use the
        # negative runtime as the value.
        points = {
            index: (profile.cloud_dollars, -profile.runtime_seconds)
            for index, profile in enumerate(profiles)
        }
        keep = set(pareto_front(points))
        profiles = [profile for index, profile in enumerate(profiles) if index in keep]

    profiles.sort(key=lambda profile: (profile.cloud_dollars, profile.runtime_seconds))
    return profiles
