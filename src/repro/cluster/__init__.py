"""Execution substrate: on-premise cluster, cloud service, cost model, simulator.

Industrial live-video deployments are provisioned with a local compute
cluster, a video buffer, and on-demand cloud workers (Section 1, [35]).  This
package models those resources and provides the Appendix-M discrete-event
simulator the paper itself uses for its ablations, plus a fine-grained
reference executor used to evaluate the simulator's accuracy (Figures 22-23).
"""

from repro.cluster.resources import ClusterSpec, CloudSpec, CloudFunctionPricing
from repro.cluster.cost import (
    MachineType,
    GCP_MACHINES,
    CostModel,
    CLOUD_TO_ON_PREM_RATIO,
)
from repro.cluster.simulator import PlacementSimulator, SimulatedExecution
from repro.cluster.executor import ReferenceExecutor, ExecutionTrace, TaskCompletion
from repro.cluster.profiler import PlacementProfile, profile_placements

__all__ = [
    "ClusterSpec",
    "CloudSpec",
    "CloudFunctionPricing",
    "MachineType",
    "GCP_MACHINES",
    "CostModel",
    "CLOUD_TO_ON_PREM_RATIO",
    "PlacementSimulator",
    "SimulatedExecution",
    "ReferenceExecutor",
    "ExecutionTrace",
    "TaskCompletion",
    "PlacementProfile",
    "profile_placements",
]
