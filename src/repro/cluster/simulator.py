"""Appendix-M placement simulator.

Given a task graph, a placement (which tasks run on premises, which on the
cloud), the number of on-premise cores and a cloud specification, the
simulator estimates the makespan of executing the graph, the cloud spend and
the bytes pushed through the uplink.  The algorithm follows Appendix M.1:

* on-premise tasks are greedily assigned to the core that frees up earliest;
* cloud tasks occupy the uplink for the time needed to upload their payload,
  then run for their measured round-trip time;
* a task becomes ready when all its parents have finished;
* the simulated runtime is the time the last task finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import ConfigurationError
from repro.cluster.resources import CloudSpec
from repro.vision.dag import TaskGraph


@dataclass
class SimulatedExecution:
    """Outcome of simulating one task graph under one placement.

    Attributes:
        makespan_seconds: estimated wall-clock time to finish every task.
        on_prem_core_seconds: total busy time summed over on-premise cores.
        cloud_core_seconds: total cloud compute time (excluding network).
        cloud_dollars: estimated cloud spend.
        upload_bytes: total payload pushed through the uplink.
        task_finish_times: per-task estimated completion times.
    """

    makespan_seconds: float
    on_prem_core_seconds: float
    cloud_core_seconds: float
    cloud_dollars: float
    upload_bytes: int
    task_finish_times: Dict[str, float] = field(default_factory=dict)


class PlacementSimulator:
    """Estimates the runtime of a placed task graph (Appendix M.1).

    Args:
        cores: number of on-premise cores available to the graph.
        cloud: cloud specification (bandwidth, latency, concurrency).
    """

    def __init__(self, cores: int, cloud: Optional[CloudSpec] = None):
        if cores < 1:
            raise ConfigurationError("the simulator needs at least one core")
        self.cores = cores
        self.cloud = cloud or CloudSpec()

    def simulate(self, graph: TaskGraph, placement: Mapping[str, str]) -> SimulatedExecution:
        """Simulate the execution of ``graph`` under ``placement``."""
        graph.validate_placement(placement)

        core_free_at = [0.0] * self.cores
        uplink_free_at = 0.0
        cloud_slots_free_at = [0.0] * self.cloud.max_concurrency
        finish_times: Dict[str, float] = {}
        on_prem_core_seconds = 0.0
        cloud_core_seconds = 0.0
        cloud_dollars = 0.0
        upload_bytes = 0

        # Process tasks in the order in which their dependencies resolve,
        # breaking ties by topological position (Appendix M: "chooses the task
        # whose dependencies are resolved at the earliest time").
        order = graph.topological_order()
        pending = set(order)
        topo_rank = {name: index for index, name in enumerate(order)}

        while pending:
            candidate = min(
                pending,
                key=lambda name: (
                    self._ready_time(graph, name, finish_times),
                    topo_rank[name],
                ),
            )
            # A task is only schedulable once all parents finished.
            if any(parent not in finish_times for parent in graph.parents(candidate)):
                # Should not happen with a DAG, but guard against it.
                raise ConfigurationError("dependency cycle detected during simulation")
            pending.remove(candidate)
            ready_time = self._ready_time(graph, candidate, finish_times)
            task = graph.task(candidate)

            if placement[candidate] == "on_prem":
                core_index = min(range(self.cores), key=lambda index: core_free_at[index])
                start = max(core_free_at[core_index], ready_time)
                finish = start + task.cost.on_prem_seconds
                core_free_at[core_index] = finish
                on_prem_core_seconds += task.cost.on_prem_seconds
            else:
                # Upload occupies the (shared) uplink fully for its duration.
                upload_time = self.cloud.upload_seconds(task.cost.upload_bytes)
                dispatchable = max(ready_time, uplink_free_at)
                upload_done = dispatchable + upload_time
                uplink_free_at = upload_done
                slot_index = min(
                    range(len(cloud_slots_free_at)), key=lambda index: cloud_slots_free_at[index]
                )
                start = max(upload_done, cloud_slots_free_at[slot_index])
                download_time = self.cloud.download_seconds(task.cost.download_bytes)
                finish = start + task.cost.cloud_seconds + download_time
                cloud_slots_free_at[slot_index] = finish
                compute_seconds = max(
                    task.cost.cloud_seconds - self.cloud.round_trip_seconds, 0.0
                )
                cloud_core_seconds += compute_seconds
                cloud_dollars += task.cost.cloud_dollars + self.cloud.pricing.dollars_per_request
                upload_bytes += task.cost.upload_bytes

            finish_times[candidate] = finish

        makespan = max(finish_times.values(), default=0.0)
        return SimulatedExecution(
            makespan_seconds=makespan,
            on_prem_core_seconds=on_prem_core_seconds,
            cloud_core_seconds=cloud_core_seconds,
            cloud_dollars=cloud_dollars,
            upload_bytes=upload_bytes,
            task_finish_times=finish_times,
        )

    @staticmethod
    def _ready_time(graph: TaskGraph, name: str, finish_times: Mapping[str, float]) -> float:
        parents = graph.parents(name)
        if not parents:
            return 0.0
        missing = [parent for parent in parents if parent not in finish_times]
        if missing:
            return float("inf")
        return max(finish_times[parent] for parent in parents)
