"""Monetary cost model: machine catalogue and cloud/on-prem cost ratio.

Section 5.3 evaluates Skyscraper on Google Cloud VM instances standing in for
on-premise servers, and Appendix L estimates that the same computation costs
1.8x more on the cloud than on an owned commodity server (a deliberately
pessimistic estimate in favour of the baselines).  The ablation study
additionally considers 1:1 and 5:2 ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError

#: Appendix L estimate of how much more a unit of compute costs on the cloud
#: relative to an owned on-premise server.
CLOUD_TO_ON_PREM_RATIO = 1.8


@dataclass(frozen=True)
class MachineType:
    """A provisionable always-on machine (the paper uses GCP instances).

    Attributes:
        name: instance type name.
        vcpus: number of virtual CPUs.
        memory_gb: installed memory.
        dollars_per_hour: on-demand rental price.
    """

    name: str
    vcpus: int
    memory_gb: float
    dollars_per_hour: float

    def __post_init__(self):
        if self.vcpus < 1:
            raise ConfigurationError("vcpus must be positive")
        if self.dollars_per_hour < 0:
            raise ConfigurationError("dollars_per_hour must be non-negative")

    def dollars_for(self, hours: float) -> float:
        """Rental cost of keeping the machine on for ``hours`` hours."""
        if hours < 0:
            raise ConfigurationError("hours must be non-negative")
        return self.dollars_per_hour * hours

    def dollars_per_core_hour(self) -> float:
        return self.dollars_per_hour / self.vcpus


#: The machine tiers used in Section 5.3 with their list prices.
GCP_MACHINES: Dict[str, MachineType] = {
    "e2-standard-4": MachineType("e2-standard-4", 4, 16.0, 0.14),
    "e2-standard-8": MachineType("e2-standard-8", 8, 32.0, 0.27),
    "e2-standard-16": MachineType("e2-standard-16", 16, 64.0, 0.54),
    "e2-standard-32": MachineType("e2-standard-32", 32, 128.0, 1.07),
    "c2-standard-60": MachineType("c2-standard-60", 60, 240.0, 2.51),
}


class CostModel:
    """Converts compute into dollars under a cloud/on-prem cost ratio.

    Args:
        cloud_to_on_prem_ratio: how many dollars one unit of cloud compute
            costs relative to the same unit on premises (1.8 in Appendix L).
        on_prem_dollars_per_core_hour: owned-hardware cost of one core hour;
            derived from the e2-standard-8 price and the Appendix-L ratio by
            default, so the Section 5.3 total-cost arithmetic is reproduced.
    """

    def __init__(
        self,
        cloud_to_on_prem_ratio: float = CLOUD_TO_ON_PREM_RATIO,
        on_prem_dollars_per_core_hour: Optional[float] = None,
    ):
        if cloud_to_on_prem_ratio <= 0:
            raise ConfigurationError("cloud_to_on_prem_ratio must be positive")
        self.cloud_to_on_prem_ratio = cloud_to_on_prem_ratio
        if on_prem_dollars_per_core_hour is None:
            reference = GCP_MACHINES["e2-standard-8"]
            on_prem_dollars_per_core_hour = (
                reference.dollars_per_core_hour() / CLOUD_TO_ON_PREM_RATIO
            )
        if on_prem_dollars_per_core_hour <= 0:
            raise ConfigurationError("on_prem_dollars_per_core_hour must be positive")
        self.on_prem_dollars_per_core_hour = on_prem_dollars_per_core_hour

    # ------------------------------------------------------------------ #
    # Provisioned (always-on) cost, Section 5.3 accounting
    # ------------------------------------------------------------------ #
    def provisioned_machine_dollars(self, machine: MachineType, hours: float) -> float:
        """On-premise-equivalent cost of renting a GCP machine for ``hours``.

        The paper charges the GCP rental price divided by the 1.8 ratio, plus
        any cloud-function spend (added separately by the caller).
        """
        return machine.dollars_for(hours) / CLOUD_TO_ON_PREM_RATIO

    # ------------------------------------------------------------------ #
    # Work-based cost, Section 5.4 ablation accounting
    # ------------------------------------------------------------------ #
    def on_prem_work_dollars(self, core_seconds: float) -> float:
        """Cost of executing ``core_seconds`` of work on owned hardware."""
        if core_seconds < 0:
            raise ConfigurationError("core_seconds must be non-negative")
        return core_seconds / 3600.0 * self.on_prem_dollars_per_core_hour

    def cloud_work_dollars(self, core_seconds: float) -> float:
        """Cost of executing ``core_seconds`` of work on cloud functions."""
        if core_seconds < 0:
            raise ConfigurationError("core_seconds must be non-negative")
        return self.on_prem_work_dollars(core_seconds) * self.cloud_to_on_prem_ratio

    def total_work_dollars(self, on_prem_core_seconds: float, cloud_core_seconds: float) -> float:
        """Combined cost of a run that used both resource kinds."""
        return self.on_prem_work_dollars(on_prem_core_seconds) + self.cloud_work_dollars(
            cloud_core_seconds
        )


def machine_for_cores(cores: int) -> MachineType:
    """Smallest catalogued machine with at least ``cores`` vCPUs."""
    if cores < 1:
        raise ConfigurationError("cores must be positive")
    candidates = sorted(GCP_MACHINES.values(), key=lambda machine: machine.vcpus)
    for machine in candidates:
        if machine.vcpus >= cores:
            return machine
    return candidates[-1]
