"""Resource descriptions: on-premise cluster, cloud service, bandwidth.

These are static specifications; the dynamic behaviour (which core is busy
until when, how much uplink is in use) lives in the simulator and executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ClusterSpec:
    """Provisioned on-premise hardware.

    Attributes:
        cores: number of physical/virtual cores usable for UDF execution.
        memory_gb: installed memory (informational; the workloads in the
            paper are compute bound).
        flops_per_core: effective FLOP/s per core, used only to convert
            core-seconds into the TFLOP/s numbers plotted in Figure 3.
    """

    cores: int
    memory_gb: float = 16.0
    flops_per_core: float = 50e9

    def __post_init__(self):
        if self.cores < 1:
            raise ConfigurationError("a cluster needs at least one core")
        if self.memory_gb <= 0:
            raise ConfigurationError("memory_gb must be positive")
        if self.flops_per_core <= 0:
            raise ConfigurationError("flops_per_core must be positive")

    def core_seconds_per_wall_second(self) -> float:
        """Aggregate compute available per second of wall-clock time."""
        return float(self.cores)


@dataclass(frozen=True)
class CloudFunctionPricing:
    """Pricing of the serverless cloud functions (AWS-Lambda-like).

    The paper provisions 3 GB functions (Section 5.1); at the published
    GB-second price that is roughly $0.00005 per compute second plus a small
    per-request fee.
    """

    dollars_per_gb_second: float = 0.0000166667
    memory_gb: float = 3.0
    dollars_per_request: float = 0.0000002

    def dollars_for(self, compute_seconds: float, requests: int = 1) -> float:
        if compute_seconds < 0 or requests < 0:
            raise ConfigurationError("compute_seconds and requests must be non-negative")
        return (
            compute_seconds * self.memory_gb * self.dollars_per_gb_second
            + requests * self.dollars_per_request
        )


@dataclass(frozen=True)
class CloudSpec:
    """On-demand cloud service reachable from the on-premise cluster.

    Attributes:
        max_concurrency: maximum number of cloud functions in flight.
        uplink_bytes_per_second: uplink bandwidth from the cluster to the
            cloud; this is the bottleneck that makes cloud bursting struggle
            on MOSEI-HIGH (Section 5.4).
        downlink_bytes_per_second: downlink bandwidth (results are small).
        round_trip_seconds: base network round-trip/invocation latency.
        pricing: serverless pricing model.
        daily_budget_dollars: optional cap on cloud spend per day (the user's
            cloud credits); ``None`` means unlimited.
    """

    max_concurrency: int = 64
    uplink_bytes_per_second: float = 60e6 / 8.0 * 8  # 60 Mbit/s expressed in bytes
    downlink_bytes_per_second: float = 200e6 / 8.0
    round_trip_seconds: float = 0.12
    pricing: CloudFunctionPricing = field(default_factory=CloudFunctionPricing)
    daily_budget_dollars: float = None

    def __post_init__(self):
        if self.max_concurrency < 1:
            raise ConfigurationError("max_concurrency must be at least 1")
        if self.uplink_bytes_per_second <= 0 or self.downlink_bytes_per_second <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if self.round_trip_seconds < 0:
            raise ConfigurationError("round_trip_seconds must be non-negative")
        if self.daily_budget_dollars is not None and self.daily_budget_dollars < 0:
            raise ConfigurationError("daily_budget_dollars must be non-negative")

    def upload_seconds(self, payload_bytes: int) -> float:
        """Time to push a payload through the uplink."""
        if payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be non-negative")
        return payload_bytes / self.uplink_bytes_per_second

    def download_seconds(self, payload_bytes: int) -> float:
        if payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be non-negative")
        return payload_bytes / self.downlink_bytes_per_second


#: A cloud spec with no usable cloud (for the "only buffering" ablation).
def no_cloud_spec() -> CloudSpec:
    """A cloud specification whose daily budget is zero (cloud disabled)."""
    return CloudSpec(daily_budget_dollars=0.0)
