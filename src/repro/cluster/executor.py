"""Fine-grained reference executor.

The paper validates its Appendix-M simulator against measurements on real
hardware (Figures 22-23): estimation errors stay below ~9% and the simulator
only ever *over*estimates, because real executions benefit from effects the
simulator ignores (overlap of decode and compute, occasional multi-core UDFs,
cloud warm starts).  Offline we cannot measure real hardware, so this module
plays the role of "real hardware": a discrete-event executor that models the
same resources but with those second-order effects — slight per-task speedups
and rare cloud latency spikes — so the simulator's accuracy experiment remains
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.cluster.resources import CloudSpec
from repro.vision.dag import TaskGraph


@dataclass(frozen=True)
class TaskCompletion:
    """Completion record of one task in a reference execution."""

    task: str
    location: str
    start_seconds: float
    finish_seconds: float


@dataclass
class ExecutionTrace:
    """Outcome of a reference execution.

    Attributes:
        makespan_seconds: wall-clock time until the last task finished.
        completions: per-task completion records in finish order.
        cloud_dollars: cloud spend of the run.
        on_prem_core_seconds: total on-premise busy time.
    """

    makespan_seconds: float
    completions: List[TaskCompletion] = field(default_factory=list)
    cloud_dollars: float = 0.0
    on_prem_core_seconds: float = 0.0

    def finish_time(self, task: str) -> float:
        for completion in self.completions:
            if completion.task == task:
                return completion.finish_seconds
        raise ConfigurationError(f"task {task!r} not present in trace")


class ReferenceExecutor:
    """Ground-truth executor with second-order effects the simulator ignores.

    Args:
        cores: on-premise cores.
        cloud: cloud specification.
        efficiency_gain: mean fraction by which real on-premise tasks run
            faster than their profiled single-core time (cache effects,
            overlap with decode).  Positive values make the Appendix-M
            simulator overestimate, as observed in the paper.
        runtime_jitter: relative standard deviation of per-task runtimes.
        cloud_spike_probability: probability that a cloud invocation suffers a
            latency spike (cold start, retransmit).
        cloud_spike_seconds: added latency of a spike.
        seed: RNG seed.
    """

    def __init__(
        self,
        cores: int,
        cloud: Optional[CloudSpec] = None,
        efficiency_gain: float = 0.04,
        runtime_jitter: float = 0.02,
        cloud_spike_probability: float = 0.01,
        cloud_spike_seconds: float = 0.8,
        seed: int = 0,
    ):
        if cores < 1:
            raise ConfigurationError("the executor needs at least one core")
        if not 0.0 <= efficiency_gain < 1.0:
            raise ConfigurationError("efficiency_gain must be in [0, 1)")
        self.cores = cores
        self.cloud = cloud or CloudSpec()
        self.efficiency_gain = efficiency_gain
        self.runtime_jitter = runtime_jitter
        self.cloud_spike_probability = cloud_spike_probability
        self.cloud_spike_seconds = cloud_spike_seconds
        self._rng = np.random.default_rng(seed)

    def execute(self, graph: TaskGraph, placement: Mapping[str, str]) -> ExecutionTrace:
        """Execute the placed graph and return the completion trace."""
        graph.validate_placement(placement)
        core_free_at = [0.0] * self.cores
        uplink_free_at = 0.0
        cloud_slots_free_at = [0.0] * self.cloud.max_concurrency
        finish_times: Dict[str, float] = {}
        completions: List[TaskCompletion] = []
        cloud_dollars = 0.0
        on_prem_core_seconds = 0.0

        order = graph.topological_order()
        pending = set(order)
        topo_rank = {name: index for index, name in enumerate(order)}

        while pending:
            candidate = min(
                pending,
                key=lambda name: (
                    self._ready_time(graph, name, finish_times),
                    topo_rank[name],
                ),
            )
            pending.remove(candidate)
            ready_time = self._ready_time(graph, candidate, finish_times)
            task = graph.task(candidate)
            location = placement[candidate]

            if location == "on_prem":
                runtime = task.cost.on_prem_seconds * (1.0 - self.efficiency_gain)
                runtime *= max(1.0 + self._rng.normal(0.0, self.runtime_jitter), 0.2)
                core_index = min(range(self.cores), key=lambda index: core_free_at[index])
                start = max(core_free_at[core_index], ready_time)
                finish = start + runtime
                core_free_at[core_index] = finish
                on_prem_core_seconds += runtime
            else:
                upload_time = self.cloud.upload_seconds(task.cost.upload_bytes)
                dispatchable = max(ready_time, uplink_free_at)
                upload_done = dispatchable + upload_time
                uplink_free_at = upload_done
                slot_index = min(
                    range(len(cloud_slots_free_at)), key=lambda index: cloud_slots_free_at[index]
                )
                round_trip = task.cost.cloud_seconds
                round_trip *= max(1.0 + self._rng.normal(0.0, self.runtime_jitter), 0.2)
                if self._rng.uniform() < self.cloud_spike_probability:
                    round_trip += self.cloud_spike_seconds
                start = max(upload_done, cloud_slots_free_at[slot_index])
                finish = start + round_trip + self.cloud.download_seconds(task.cost.download_bytes)
                cloud_slots_free_at[slot_index] = finish
                cloud_dollars += task.cost.cloud_dollars + self.cloud.pricing.dollars_per_request

            finish_times[candidate] = finish
            completions.append(
                TaskCompletion(
                    task=candidate, location=location, start_seconds=start, finish_seconds=finish
                )
            )

        completions.sort(key=lambda completion: completion.finish_seconds)
        return ExecutionTrace(
            makespan_seconds=max(finish_times.values(), default=0.0),
            completions=completions,
            cloud_dollars=cloud_dollars,
            on_prem_core_seconds=on_prem_core_seconds,
        )

    @staticmethod
    def _ready_time(graph: TaskGraph, name: str, finish_times: Mapping[str, float]) -> float:
        parents = graph.parents(name)
        if not parents:
            return 0.0
        missing = [parent for parent in parents if parent not in finish_times]
        if missing:
            return float("inf")
        return max(finish_times[parent] for parent in parents)
