"""Multi-object tracking workload (Section 5.2, Appendix J).

The MOT workload runs a TransMOT-style graph-transformer tracker over a busy
traffic intersection.  Its four knobs are the processed frame rate, the number
of tiles, the length of the frame history fed to the tracker, and the model
size.  Quality is the number of correctly tracked pedestrians, weighted by the
model's reported certainty (the paper uses certainty as an accuracy proxy).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.interfaces import SegmentOutcome
from repro.core.knobs import KnobConfiguration, KnobSpace
from repro.video.codec import DecodeCostModel
from repro.video.content import ContentModel, DiurnalProfile
from repro.video.frame import VideoSegment
from repro.video.stream import StreamConfig
from repro.vision.dag import Task, TaskGraph
from repro.vision.embedding import SimulatedEmbedder
from repro.vision.tracker import SimulatedTransMOT
from repro.vision.udf import OperatorCost
from repro.warehouse.loader import TrackRecord
from repro.workloads.base import BaseWorkload, WorkloadSetup

_NATIVE_FPS = 30.0


def _mot_knob_space() -> KnobSpace:
    space = KnobSpace()
    # "frame rate (every {60, 30, 5, 1} frames)": value = process every N-th frame.
    space.register_knob("frame_skip", (60, 30, 5, 1))
    space.register_knob("tiles", (1, 2))
    space.register_knob("history", (1, 2, 3, 5))
    space.register_knob("model_size", ("small", "medium", "large"))
    return space


def _mot_content_model(seed: int = 11) -> ContentModel:
    """The Shibuya crossing: dense pedestrian traffic with heavy rush hours."""
    return ContentModel(
        seed=seed,
        diurnal=DiurnalProfile(
            night_level=0.12,
            day_level=0.6,
            morning_peak_hour=8.5,
            evening_peak_hour=18.5,
            peak_level=1.0,
            peak_width_hours=2.0,
        ),
        burst_rate_per_hour=50.0,
        burst_duration_seconds=45.0,
        burst_magnitude=0.3,
    )


class MotWorkload(BaseWorkload):
    """The multi-object tracking V-ETL job."""

    def __init__(
        self,
        content_model: Optional[ContentModel] = None,
        stream_config: Optional[StreamConfig] = None,
        seed: int = 11,
    ):
        super().__init__(
            name="mot",
            knob_space=_mot_knob_space(),
            content_model=content_model or _mot_content_model(seed),
            stream_config=stream_config
            or StreamConfig(stream_id="mot-shibuya", segment_seconds=2.0),
        )
        self.seed = seed
        self.tracker = SimulatedTransMOT(seed=seed)
        self.embedder = SimulatedEmbedder(name="vgg-embedder", seconds_per_item=0.008, seed=seed)
        self.decode = DecodeCostModel()

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def build_task_graph(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> TaskGraph:
        frame_skip = int(configuration["frame_skip"])
        tiles_per_side = int(configuration["tiles"])
        history = int(configuration["history"])
        model_size = str(configuration["model_size"])
        tiles = tiles_per_side * tiles_per_side

        arriving_frames = segment.frame_count
        processed_frames = max(arriving_frames / frame_skip, 1.0)
        expected_objects = max(segment.ground_truth_objects, 1)

        graph = TaskGraph()
        decode_cost = OperatorCost(
            on_prem_seconds=self.decode.segment_decode_seconds(
                arriving_frames, segment.width, segment.height
            ),
            cloud_seconds=0.0,
            cloud_dollars=0.0,
            upload_bytes=0,
            download_bytes=0,
        )
        graph.add_task(Task("decode", "decoder", decode_cost, invocations=arriving_frames))

        embed_cost = self.embedder.invocation_cost(items=expected_objects).scaled(processed_frames)
        graph.add_task(Task("embed", "vgg-embedder", embed_cost), depends_on=["decode"])

        per_inference = self.tracker.invocation_cost(
            model_size=model_size,
            history=history,
            tiles=tiles,
            width=segment.width,
            height=segment.height,
        )
        # Throughput-oriented tracking can pipeline across frame windows (and
        # across tiles within a frame), so model up to ten parallel tracker
        # tasks; latency per frame is irrelevant for the V-ETL constraint.
        track_tasks = min(10, max(int(math.ceil(processed_frames / 6.0)), 1))
        track_names = []
        for index in range(track_tasks):
            name = f"transmot_{index}"
            graph.add_task(
                Task(
                    name,
                    "transmot",
                    per_inference.scaled(processed_frames / track_tasks),
                    invocations=max(int(round(processed_frames / track_tasks)), 1),
                ),
                depends_on=["embed"],
            )
            track_names.append(name)

        aggregate_cost = OperatorCost(
            on_prem_seconds=0.002,
            cloud_seconds=0.12,
            cloud_dollars=1e-7,
            upload_bytes=4_096,
            download_bytes=1_024,
        )
        graph.add_task(Task("aggregate", "track-aggregator", aggregate_cost), depends_on=track_names)
        return graph

    # ------------------------------------------------------------------ #
    # Quality model
    # ------------------------------------------------------------------ #
    def _robustness(self, configuration: KnobConfiguration) -> float:
        frame_skip = int(configuration["frame_skip"])
        tiles = int(configuration["tiles"])
        history = int(configuration["history"])
        model_size = str(configuration["model_size"])
        rate_term = (math.log(60.0) - math.log(frame_skip)) / math.log(60.0)
        tile_term = 1.0 if tiles > 1 else 0.0
        history_term = (history - 1) / 4.0
        size_term = {"small": 0.0, "medium": 0.6, "large": 1.0}[model_size]
        return self._clip01(
            0.35 * rate_term + 0.15 * tile_term + 0.20 * history_term + 0.30 * size_term
        )

    def _difficulty(self, segment: VideoSegment) -> float:
        content = segment.content
        return self._clip01(
            0.75 * content.occlusion
            + 0.20 * content.motion * content.object_density
            + 0.15 * (1.0 - content.lighting) * content.object_density
        )

    def evaluate(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> SegmentOutcome:
        robustness = self._config_term("robustness", configuration, self._robustness)
        difficulty = self._difficulty(segment)
        size_term = {"small": 0.06, "medium": 0.03, "large": 0.0}[str(configuration["model_size"])]
        captured = self._clip01((1.0 - difficulty * (1.0 - robustness)) * (1.0 - size_term))

        true_quality = self._clip01(captured + self._noise(configuration, segment, "quality", 0.02))
        # Reported quality: tracked pedestrians weighted by model certainty;
        # certainty correlates with the true success rate.
        certainty = self._clip01(0.25 + 0.72 * captured + self._noise(configuration, segment, "certainty", 0.03))
        reported_quality = self._clip01(captured * 0.5 + certainty * 0.5)

        pedestrians = segment.ground_truth_objects
        tracked = int(round(pedestrians * true_quality))
        warehouse_rows = {
            "tracks": [
                TrackRecord(
                    camera_id=segment.stream_id,
                    segment_index=segment.segment_index,
                    timestamp=segment.start_time,
                    tracked_objects=tracked,
                    lost_tracks=max(pedestrians - tracked, 0),
                    mean_certainty=certainty,
                )
            ]
        }
        return SegmentOutcome(
            reported_quality=reported_quality,
            true_quality=true_quality,
            entities=float(tracked),
            warehouse_rows=warehouse_rows,
        )


def make_mot_setup(
    history_days: float = 2.0,
    online_days: float = 1.0,
    segment_seconds: float = 2.0,
    seed: int = 11,
) -> WorkloadSetup:
    """A ready-to-run MOT workload setup."""
    workload = MotWorkload(
        stream_config=StreamConfig(stream_id="mot-shibuya", segment_seconds=segment_seconds),
        seed=seed,
    )
    return WorkloadSetup(
        workload=workload,
        source=workload.make_source(),
        history_days=history_days,
        online_days=online_days,
    )
