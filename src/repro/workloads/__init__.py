"""The paper's evaluation workloads, built on the synthetic substrates.

* :mod:`repro.workloads.ev` — the introduction's EV-counting example
  (object detector + tracker, Figure 1/Figure 3);
* :mod:`repro.workloads.covid` — COVID-19 safety measures: pedestrian
  detection, tracking, mask classification and social distancing;
* :mod:`repro.workloads.mot` — multi-object tracking with a TransMOT-style
  tracker;
* :mod:`repro.workloads.mosei` — multimodal opinion sentiment over a varying
  number of concurrent streams (MOSEI-HIGH and MOSEI-LONG spike patterns);
* :mod:`repro.workloads.fleet` — fleet scenarios replicating any workload
  across N phase-shifted or heterogeneous cameras.
"""

from repro.workloads.base import BaseWorkload, WorkloadSetup
from repro.workloads.fleet import (
    FleetScenario,
    FleetStreamSpec,
    PhaseShiftedContentModel,
    make_fleet_scenario,
)
from repro.workloads.ev import EVCountingWorkload, make_ev_setup
from repro.workloads.regime import RegimeShiftWorkload, make_regime_setup
from repro.workloads.covid import CovidWorkload, make_covid_setup
from repro.workloads.mot import MotWorkload, make_mot_setup
from repro.workloads.mosei import MoseiWorkload, make_mosei_setup

__all__ = [
    "BaseWorkload",
    "WorkloadSetup",
    "FleetScenario",
    "FleetStreamSpec",
    "PhaseShiftedContentModel",
    "make_fleet_scenario",
    "EVCountingWorkload",
    "make_ev_setup",
    "RegimeShiftWorkload",
    "make_regime_setup",
    "CovidWorkload",
    "make_covid_setup",
    "MotWorkload",
    "make_mot_setup",
    "MoseiWorkload",
    "make_mosei_setup",
]
