"""The EV-counting example workload from the introduction (Figures 1 and 3).

A traffic camera feeds a YOLO object detector that finds cars (EVs are
distinguishable by their green license plates) and a KCF tracker that follows
them across the frame to avoid double counting.  The user registers two knobs:
how often the detector runs and which YOLO variant to use.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.interfaces import SegmentOutcome
from repro.core.knobs import KnobConfiguration, KnobSpace
from repro.video.codec import DecodeCostModel
from repro.video.content import ContentModel, DiurnalProfile
from repro.video.frame import VideoSegment
from repro.video.stream import StreamConfig
from repro.vision.dag import Task, TaskGraph
from repro.vision.detector import SimulatedObjectDetector
from repro.vision.model_zoo import get_model_variant
from repro.vision.tracker import SimulatedTracker
from repro.vision.udf import OperatorCost
from repro.warehouse.loader import DetectionRecord
from repro.workloads.base import BaseWorkload, WorkloadSetup

_NATIVE_FPS = 30.0
#: Fraction of detected cars that are EVs in the synthetic stream.
_EV_FRACTION = 0.12


def _ev_knob_space() -> KnobSpace:
    space = KnobSpace()
    space.register_knob("det_interval", (60, 30, 10, 5, 1))
    space.register_knob("yolo_size", ("small", "medium", "large"))
    return space


def _ev_content_model(seed: int = 3) -> ContentModel:
    """A traffic intersection: pronounced morning/evening rush hours."""
    return ContentModel(
        seed=seed,
        diurnal=DiurnalProfile(
            night_level=0.10,
            day_level=0.55,
            morning_peak_hour=8.0,
            evening_peak_hour=17.5,
            peak_level=1.0,
            peak_width_hours=1.5,
        ),
        burst_rate_per_hour=35.0,
        burst_duration_seconds=50.0,
        burst_magnitude=0.3,
    )


class EVCountingWorkload(BaseWorkload):
    """The introduction's EV-counting V-ETL job."""

    def __init__(
        self,
        content_model: Optional[ContentModel] = None,
        stream_config: Optional[StreamConfig] = None,
        seed: int = 3,
    ):
        super().__init__(
            name="ev",
            knob_space=_ev_knob_space(),
            content_model=content_model or _ev_content_model(seed),
            stream_config=stream_config
            or StreamConfig(stream_id="ev-traffic-cam", segment_seconds=2.0),
        )
        self.seed = seed
        self.detector = SimulatedObjectDetector(family="yolo", seed=seed)
        self.tracker = SimulatedTracker(seed=seed)
        self.decode = DecodeCostModel()

    # ------------------------------------------------------------------ #
    # Named configurations used by the Figure 3 walk-through
    # ------------------------------------------------------------------ #
    def named_configurations(self) -> Dict[str, KnobConfiguration]:
        """The cheap / medium / expensive configurations plotted in Figure 3."""
        return {
            "cheap": self.knob_space.configuration(det_interval=60, yolo_size="small"),
            "medium": self.knob_space.configuration(det_interval=10, yolo_size="medium"),
            "expensive": self.knob_space.configuration(det_interval=1, yolo_size="large"),
        }

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def build_task_graph(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> TaskGraph:
        det_interval = int(configuration["det_interval"])
        yolo_size = str(configuration["yolo_size"])
        arriving_frames = segment.frame_count
        detector_invocations = arriving_frames / det_interval
        expected_objects = max(segment.ground_truth_objects, 1)

        graph = TaskGraph()
        decode_cost = OperatorCost(
            on_prem_seconds=self.decode.segment_decode_seconds(
                arriving_frames, segment.width, segment.height
            ),
            cloud_seconds=0.0,
            cloud_dollars=0.0,
            upload_bytes=0,
            download_bytes=0,
        )
        graph.add_task(Task("decode", "decoder", decode_cost, invocations=arriving_frames))

        per_detection = self.detector.invocation_cost(
            model_size=yolo_size, width=segment.width, height=segment.height
        )
        detect_tasks = min(8, max(int(math.ceil(detector_invocations)), 1))
        detect_names = []
        for index in range(detect_tasks):
            name = f"detect_{index}"
            graph.add_task(
                Task(
                    name,
                    "yolo-detector",
                    per_detection.scaled(detector_invocations / detect_tasks),
                    invocations=max(int(round(detector_invocations / detect_tasks)), 1),
                ),
                depends_on=["decode"],
            )
            detect_names.append(name)

        track_cost = self.tracker.invocation_cost(objects=expected_objects, frames=arriving_frames)
        graph.add_task(Task("track", "kcf-tracker", track_cost), depends_on=detect_names)
        return graph

    # ------------------------------------------------------------------ #
    # Quality model
    # ------------------------------------------------------------------ #
    def _robustness(self, configuration: KnobConfiguration) -> float:
        det_interval = int(configuration["det_interval"])
        yolo_size = str(configuration["yolo_size"])
        det_term = (math.log(60.0) - math.log(det_interval)) / math.log(60.0)
        size_term = {"small": 0.0, "medium": 0.6, "large": 1.0}[yolo_size]
        return self._clip01(0.55 * det_term + 0.45 * size_term)

    def _difficulty(self, segment: VideoSegment) -> float:
        content = segment.content
        return self._clip01(
            0.85 * content.occlusion + 0.2 * (1.0 - content.lighting) * content.object_density
        )

    def _easy_factor(self, configuration: KnobConfiguration) -> float:
        variant = get_model_variant("yolo", str(configuration["yolo_size"]))
        easy_loss = 1.0 - variant.base_accuracy * 0.5 - 0.5
        return 1.0 - max(easy_loss, 0.0)

    def evaluate(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> SegmentOutcome:
        robustness = self._config_term("robustness", configuration, self._robustness)
        difficulty = self._difficulty(segment)
        easy_factor = self._config_term("easy_factor", configuration, self._easy_factor)
        captured = self._clip01((1.0 - difficulty * (1.0 - robustness)) * easy_factor)

        noise = self._noise(configuration, segment, "quality", 0.02)
        true_quality = self._clip01(captured + noise)
        reported_quality = self._clip01(
            captured + self._noise(configuration, segment, "report", 0.03)
        )
        return self._package_outcome(segment, true_quality, reported_quality)

    def evaluate_config_batch(
        self, configuration: KnobConfiguration, segments: Sequence[VideoSegment]
    ) -> List[SegmentOutcome]:
        """Vectorized quality model over a run of segments (one configuration).

        The captured-quality expression uses only elementwise ``+``/``-``/
        ``*`` and clips, so the array path is bit-for-bit identical to
        :meth:`evaluate`; only the deterministic per-segment noise stays a
        scalar loop (it is a hash).
        """
        robustness = self._config_term("robustness", configuration, self._robustness)
        easy_factor = self._config_term("easy_factor", configuration, self._easy_factor)
        occlusion = np.array([segment.content.occlusion for segment in segments])
        lighting = np.array([segment.content.lighting for segment in segments])
        density = np.array([segment.content.object_density for segment in segments])
        difficulty = np.minimum(
            np.maximum(0.85 * occlusion + 0.2 * (1.0 - lighting) * density, 0.0), 1.0
        )
        captured = np.minimum(
            np.maximum((1.0 - difficulty * (1.0 - robustness)) * easy_factor, 0.0), 1.0
        )
        outcomes: List[SegmentOutcome] = []
        for position, segment in enumerate(segments):
            base = float(captured[position])
            true_quality = self._clip01(base + self._noise(configuration, segment, "quality", 0.02))
            reported_quality = self._clip01(
                base + self._noise(configuration, segment, "report", 0.03)
            )
            outcomes.append(self._package_outcome(segment, true_quality, reported_quality))
        return outcomes

    def _package_outcome(
        self, segment: VideoSegment, true_quality: float, reported_quality: float
    ) -> SegmentOutcome:
        cars = segment.ground_truth_objects
        counted = int(round(cars * true_quality))
        ev_count = int(round(counted * _EV_FRACTION))
        warehouse_rows = {
            "detections": [
                DetectionRecord(
                    camera_id=segment.stream_id,
                    segment_index=segment.segment_index,
                    timestamp=segment.start_time,
                    category="car",
                    count=counted - ev_count,
                    mean_confidence=reported_quality,
                ),
                DetectionRecord(
                    camera_id=segment.stream_id,
                    segment_index=segment.segment_index,
                    timestamp=segment.start_time,
                    category="ev",
                    count=ev_count,
                    mean_confidence=reported_quality,
                ),
            ]
        }
        return SegmentOutcome(
            reported_quality=reported_quality,
            true_quality=true_quality,
            entities=float(counted),
            warehouse_rows=warehouse_rows,
        )


def make_ev_setup(
    history_days: float = 2.0,
    online_days: float = 1.0,
    segment_seconds: float = 2.0,
    seed: int = 3,
) -> WorkloadSetup:
    """A ready-to-run EV-counting setup (the Figure 3 walk-through)."""
    workload = EVCountingWorkload(
        stream_config=StreamConfig(stream_id="ev-traffic-cam", segment_seconds=segment_seconds),
        seed=seed,
    )
    return WorkloadSetup(
        workload=workload,
        source=workload.make_source(),
        history_days=history_days,
        online_days=online_days,
    )
