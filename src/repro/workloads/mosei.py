"""Multimodal opinion sentiment workload (MOSEI-HIGH and MOSEI-LONG).

The MOSEI workload simulates a Twitch-like scenario: a time-varying number of
concurrent talking-head streams must be analyzed for speaker sentiment using
audio transcription, face/audio feature extraction, and a sentiment
classifier.  Two synthetic spike patterns stress the two resource types
(Section 5.2):

* **MOSEI-HIGH** — short but very high peaks (62 concurrent streams), which
  strain the uplink bandwidth and therefore cloud bursting;
* **MOSEI-LONG** — one long sustained peak, which fills any finite buffer.

Knobs: how many sentences may be skipped between sentiment analyses, the
fraction of each analyzed sentence that is inspected, the sentiment model
size, and the number of streams to analyze.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.interfaces import SegmentOutcome
from repro.core.knobs import KnobConfiguration, KnobSpace
from repro.errors import ConfigurationError
from repro.video.content import ContentModel, DiurnalProfile, SpikeSchedule
from repro.video.frame import VideoSegment
from repro.video.stream import SegmentColumns, StreamConfig
from repro.vision.classifier import SimulatedClassifier
from repro.vision.dag import Task, TaskGraph
from repro.vision.embedding import SimulatedEmbedder
from repro.vision.udf import OperatorCost
from repro.warehouse.loader import SentimentRecord
from repro.workloads.base import BaseWorkload, WorkloadSetup

#: Maximum number of concurrent streams during the MOSEI-HIGH peaks.
MAX_STREAMS = 62
#: Average spoken-sentence length in seconds (used to convert sentence knobs).
_SENTENCE_SECONDS = 4.0
#: Number of streams assumed when profiling runtimes (mid-load reference).
_REFERENCE_STREAMS = 16


def _mosei_knob_space() -> KnobSpace:
    space = KnobSpace()
    space.register_knob("sentence_skip", (6, 5, 4, 3, 2, 1, 0))
    space.register_knob("frame_fraction", (1, 2, 3, 4, 5, 6))  # sixths of a sentence
    space.register_knob("model_size", ("small", "medium", "large"))
    space.register_knob("streams", (8, 16, 32, 62))
    return space


def _mosei_content_model(variant: str, seed: int = 23) -> ContentModel:
    """Twitch-like activity: diurnal baseline plus synthetic spikes."""
    if variant == "high":
        spikes = SpikeSchedule(
            period_seconds=4 * 3_600.0,
            duration_seconds=20 * 60.0,
            magnitude=0.9,
            start_offset_seconds=90 * 60.0,
        )
    elif variant == "long":
        spikes = SpikeSchedule(
            period_seconds=24 * 3_600.0,
            duration_seconds=7 * 3_600.0,
            magnitude=0.55,
            start_offset_seconds=10 * 3_600.0,
        )
    else:
        raise ConfigurationError("MOSEI variant must be 'high' or 'long'")
    return ContentModel(
        seed=seed,
        diurnal=DiurnalProfile(
            night_level=0.2,
            day_level=0.45,
            morning_peak_hour=11.0,
            evening_peak_hour=20.0,
            peak_level=0.7,
            peak_width_hours=2.5,
        ),
        burst_rate_per_hour=15.0,
        burst_duration_seconds=120.0,
        burst_magnitude=0.15,
        spikes=spikes,
    )


class MoseiWorkload(BaseWorkload):
    """The multimodal sentiment V-ETL job over many concurrent streams."""

    def __init__(
        self,
        variant: str = "high",
        content_model: Optional[ContentModel] = None,
        stream_config: Optional[StreamConfig] = None,
        seed: int = 23,
    ):
        if variant not in ("high", "long"):
            raise ConfigurationError("MOSEI variant must be 'high' or 'long'")
        self.variant = variant
        super().__init__(
            name=f"mosei-{variant}",
            knob_space=_mosei_knob_space(),
            content_model=content_model or _mosei_content_model(variant, seed),
            stream_config=stream_config
            or StreamConfig(
                stream_id=f"mosei-{variant}", width=640, height=480, segment_seconds=7.0
            ),
        )
        self.seed = seed
        self.sentiment = SimulatedClassifier(family="sentiment", seed=seed)
        self.face_embedder = SimulatedEmbedder(
            name="face-embedder", seconds_per_item=0.012, seed=seed
        )
        self.audio_features = SimulatedEmbedder(
            name="audio-features", seconds_per_item=0.02, dimension=32, seed=seed + 1
        )

    # ------------------------------------------------------------------ #
    # Stream load
    # ------------------------------------------------------------------ #
    def active_streams(self, segment: VideoSegment) -> int:
        """Number of concurrently incoming streams during the segment."""
        return max(int(round(segment.content.stream_load * MAX_STREAMS)), 1)

    def analyzed_streams(self, configuration: KnobConfiguration, segment: VideoSegment) -> int:
        """Streams actually analyzed: the knob value capped by what is live."""
        return min(int(configuration["streams"]), self.active_streams(segment))

    def quality_weight(self, segment: VideoSegment) -> float:
        """MOSEI quality sums over live streams, so weight by the active count."""
        return float(self.active_streams(segment))

    def quality_weight_columns(self, columns: SegmentColumns) -> np.ndarray:
        """Batched active-stream weights (bit-for-bit the scalar rounding)."""
        active = np.maximum(np.round(columns.content.stream_load * MAX_STREAMS), 1)
        return active.astype(float)

    def runtime_scale(self, configuration: KnobConfiguration, segment: VideoSegment) -> float:
        """Scale the profiled runtime by the actual number of analyzed streams.

        Profiling uses the representative segment's ``_REFERENCE_STREAMS``; at
        run time the work is proportional to how many streams are analyzed.
        """
        reference = min(int(configuration["streams"]), _REFERENCE_STREAMS)
        return self.analyzed_streams(configuration, segment) / max(reference, 1)

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def _per_stream_costs(self, configuration: KnobConfiguration, segment: VideoSegment):
        sentence_skip = int(configuration["sentence_skip"])
        frame_fraction = int(configuration["frame_fraction"]) / 6.0
        model_size = str(configuration["model_size"])

        sentences = max(segment.duration / _SENTENCE_SECONDS, 0.25)
        analyzed_sentences = sentences / (1.0 + sentence_skip)
        frames_inspected = analyzed_sentences * frame_fraction * 30.0 * _SENTENCE_SECONDS / 6.0

        transcription = OperatorCost(
            on_prem_seconds=0.04 * sentences,
            cloud_seconds=0.12 + 0.02 * sentences,
            cloud_dollars=0.02 * sentences * 3.0 * 0.0000166667,
            upload_bytes=int(64_000 * segment.duration),
            download_bytes=2_048,
        )
        visual = self.face_embedder.invocation_cost(items=max(int(frames_inspected), 1))
        audio = self.audio_features.invocation_cost(items=max(int(analyzed_sentences * 3), 1))
        classify = self.sentiment.invocation_cost(
            model_size=model_size, items=max(int(round(analyzed_sentences)), 1)
        )
        return transcription, visual, audio, classify

    def build_task_graph(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> TaskGraph:
        streams = min(int(configuration["streams"]), _REFERENCE_STREAMS)
        transcription, visual, audio, classify = self._per_stream_costs(configuration, segment)

        graph = TaskGraph()
        # Streams are independent; group them into up to four parallel branches.
        branches = min(4, streams)
        streams_per_branch = streams / branches
        for branch in range(branches):
            prefix = f"b{branch}"
            graph.add_task(
                Task(f"{prefix}_transcribe", "transcription", transcription.scaled(streams_per_branch))
            )
            graph.add_task(
                Task(f"{prefix}_visual", "face-embedder", visual.scaled(streams_per_branch))
            )
            graph.add_task(
                Task(f"{prefix}_audio", "audio-features", audio.scaled(streams_per_branch)),
                depends_on=[f"{prefix}_transcribe"],
            )
            graph.add_task(
                Task(f"{prefix}_classify", "sentiment", classify.scaled(streams_per_branch)),
                depends_on=[f"{prefix}_transcribe", f"{prefix}_visual", f"{prefix}_audio"],
            )
        return graph

    # ------------------------------------------------------------------ #
    # Quality model
    # ------------------------------------------------------------------ #
    def _robustness(self, configuration: KnobConfiguration) -> float:
        sentence_skip = int(configuration["sentence_skip"])
        frame_fraction = int(configuration["frame_fraction"]) / 6.0
        model_size = str(configuration["model_size"])
        size_term = {"small": 0.0, "medium": 0.6, "large": 1.0}[model_size]
        evidence = (1.0 / (1.0 + sentence_skip)) ** 0.5 * frame_fraction**0.3
        return self._clip01(0.45 * size_term + 0.55 * evidence)

    def _per_stream_accuracy(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> float:
        content = segment.content
        robustness = self._config_term("robustness", configuration, self._robustness)
        # Sentiment volatility grows with activity (fast-paced streams).
        difficulty = self._clip01(0.55 * content.activity + 0.25 * content.motion)
        base = 0.95 - 0.35 * difficulty * (1.0 - robustness) - 0.12 * (1.0 - robustness)
        return self._clip01(base)

    def evaluate(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> SegmentOutcome:
        active = self.active_streams(segment)
        analyzed = self.analyzed_streams(configuration, segment)
        accuracy = self._per_stream_accuracy(configuration, segment)

        # Overall quality: summed per-stream accuracy over the streams that
        # were analyzed, relative to analyzing every live stream perfectly.
        captured = accuracy * analyzed / active
        true_quality = self._clip01(captured + self._noise(configuration, segment, "quality", 0.02))
        certainty = self._clip01(
            0.3 + 0.65 * accuracy + self._noise(configuration, segment, "certainty", 0.03)
        )
        reported_quality = self._clip01((analyzed / active) * certainty)

        sentiment_label = "positive" if segment.content.lighting > 0.5 else "neutral"
        warehouse_rows = {
            "sentiments": [
                SentimentRecord(
                    stream_id=f"{segment.stream_id}-{stream_index}",
                    segment_index=segment.segment_index,
                    timestamp=segment.start_time,
                    sentiment=sentiment_label,
                    certainty=certainty,
                )
                for stream_index in range(min(analyzed, 3))
            ]
        }
        return SegmentOutcome(
            reported_quality=reported_quality,
            true_quality=true_quality,
            entities=float(analyzed),
            warehouse_rows=warehouse_rows,
        )


def make_mosei_setup(
    variant: str = "high",
    history_days: float = 2.0,
    online_days: float = 1.0,
    segment_seconds: float = 7.0,
    seed: int = 23,
) -> WorkloadSetup:
    """A ready-to-run MOSEI setup (``variant`` is ``"high"`` or ``"long"``)."""
    workload = MoseiWorkload(
        variant=variant,
        stream_config=StreamConfig(
            stream_id=f"mosei-{variant}", width=640, height=480, segment_seconds=segment_seconds
        ),
        seed=seed,
    )
    return WorkloadSetup(
        workload=workload,
        source=workload.make_source(),
        history_days=history_days,
        online_days=online_days,
    )
