"""A regime-switching variant of the EV-counting workload.

The adaptation experiments need a stream whose content statistics *change*
mid-run: models fitted on the recorded history degrade after the switch, and
the drift monitor should notice.  :class:`RegimeShiftWorkload` is the EV
workload with a :class:`~repro.video.content.RegimeSchedule` attached to its
content model — e.g. a construction site opening next to the intersection
partway through the online window: baseline activity jumps and traffic
bursts become heavier, so segments get harder (more occlusion, more objects)
than anything the offline phase saw.

:func:`make_regime_setup` places the regime boundary *inside* the online
window (30% in by default) so the offline fit is purely pre-shift.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.video.content import ContentModel, RegimeSchedule
from repro.video.stream import StreamConfig
from repro.workloads.base import WorkloadSetup
from repro.workloads.ev import EVCountingWorkload, _ev_content_model

SECONDS_PER_DAY = 86_400.0

#: Default post-shift regime: baseline activity up by 0.28, bursts 1.8x.
DEFAULT_ACTIVITY_SHIFT = 0.28
DEFAULT_BURST_SCALE = 1.8


class RegimeShiftWorkload(EVCountingWorkload):
    """EV counting on a stream whose content regime changes mid-run."""

    def __init__(
        self,
        regimes: RegimeSchedule,
        stream_config: Optional[StreamConfig] = None,
        seed: int = 3,
    ):
        base = _ev_content_model(seed)
        content_model = ContentModel(
            seed=base.seed,
            diurnal=base.diurnal,
            burst_rate_per_hour=base.burst_rate_per_hour,
            burst_duration_seconds=base.burst_duration_seconds,
            burst_magnitude=base.burst_magnitude,
            regimes=regimes,
        )
        super().__init__(
            content_model=content_model,
            stream_config=stream_config
            or StreamConfig(stream_id="ev-regime-cam", segment_seconds=2.0),
            seed=seed,
        )
        # Rename after the base constructor: the name seeds the evaluation
        # noise, so "ev-regime" is its own deterministic universe.
        self.name = "ev-regime"
        self.regimes = regimes


def make_regime_setup(
    history_days: float = 2.0,
    online_days: float = 1.0,
    segment_seconds: float = 2.0,
    seed: int = 3,
    shift_fraction: float = 0.3,
    activity_shift: float = DEFAULT_ACTIVITY_SHIFT,
    burst_scale: float = DEFAULT_BURST_SCALE,
    extra_boundaries: Sequence[Tuple[float, float, float]] = (),
) -> WorkloadSetup:
    """A regime-switching EV setup with the shift inside the online window.

    Args:
        history_days: recorded (pre-shift) history the offline phase fits on.
        online_days: online ingestion window length.
        segment_seconds: segment length.
        seed: content/evaluation seed.
        shift_fraction: where the regime boundary sits inside the online
            window, as a fraction of ``online_days`` (0.3 = 30% in).
        activity_shift: additive baseline-activity jump after the boundary.
        burst_scale: multiplicative burst-magnitude factor after the boundary.
        extra_boundaries: optional further ``(fraction, shift, scale)``
            regime changes inside the online window, after the first.
    """
    if not 0.0 < shift_fraction < 1.0:
        raise ConfigurationError("shift_fraction must be in (0, 1)")
    history_seconds = history_days * SECONDS_PER_DAY
    online_seconds = online_days * SECONDS_PER_DAY
    boundaries = [history_seconds + shift_fraction * online_seconds]
    shifts = [0.0, float(activity_shift)]
    scales = [1.0, float(burst_scale)]
    for fraction, shift, scale in extra_boundaries:
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError("extra boundary fractions must be in (0, 1)")
        boundaries.append(history_seconds + fraction * online_seconds)
        shifts.append(float(shift))
        scales.append(float(scale))
    schedule = RegimeSchedule(
        boundaries_seconds=tuple(boundaries),
        activity_shifts=tuple(shifts),
        burst_scales=tuple(scales),
    )
    workload = RegimeShiftWorkload(
        regimes=schedule,
        stream_config=StreamConfig(
            stream_id="ev-regime-cam", segment_seconds=segment_seconds
        ),
        seed=seed,
    )
    return WorkloadSetup(
        workload=workload,
        source=workload.make_source(),
        history_days=history_days,
        online_days=online_days,
    )
