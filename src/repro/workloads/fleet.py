"""Fleet scenarios: replicate a workload across many cameras.

A :class:`FleetScenario` turns one :class:`~repro.workloads.base.WorkloadSetup`
into N concurrent camera streams sharing a cluster.  Two axes of diversity
are supported, separately or combined:

* **phase shift** — camera *i* observes the same content process shifted by
  ``i * phase_shift_seconds`` (cameras across time zones, or streets whose
  rush hours are offset), via :class:`PhaseShiftedContentModel`;
* **heterogeneous seeds** — each camera gets its own content seed, so the
  fleet's streams are statistically similar but sample-level independent.

The offline phase (profiles, categories, forecaster) is fitted once on the
base camera and shared across the fleet: content categories depend only on
the content *distribution*, which phase shifts and re-seeding preserve, so a
fleet operator fits once and deploys everywhere — the multi-camera analogue
of the paper's single-camera train/test split.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.video.content import ContentModel, ContentState, ContentStateColumns
from repro.video.stream import SyntheticVideoSource
from repro.workloads.base import WorkloadSetup


class PhaseShiftedContentModel:
    """A time-shifted view of a content model.

    ``state_at(t)`` returns the base model's state at ``t + shift_seconds``,
    re-stamped with the query time, so a camera built on the shifted model
    sees the same content process offset in time.  The wrapper satisfies the
    (duck-typed) content-model interface the video source needs.
    """

    def __init__(self, base: ContentModel, shift_seconds: float):
        if shift_seconds < 0:
            raise ConfigurationError("shift_seconds must be non-negative")
        self.base = base
        self.shift_seconds = float(shift_seconds)

    @property
    def seed(self) -> int:
        return self.base.seed

    def with_seed(self, seed: int) -> "PhaseShiftedContentModel":
        """Re-seed the wrapped model, keeping the phase shift."""
        return PhaseShiftedContentModel(self.base.with_seed(seed), self.shift_seconds)

    def state_at(self, timestamp: float, stream_load: Optional[float] = None) -> ContentState:
        state = self.base.state_at(timestamp + self.shift_seconds, stream_load)
        return replace(state, timestamp=float(timestamp))

    def states_at(
        self, timestamps: "np.ndarray", stream_load: Optional[float] = None
    ) -> ContentStateColumns:
        ts = np.asarray(timestamps, dtype=float)
        columns = self.base.states_at(ts + self.shift_seconds, stream_load)
        return replace(columns, timestamp=ts)

    def states(self, start: float, end: float, step_seconds: float) -> List[ContentState]:
        # Delegate to the one sampling implementation (it only needs
        # ``states_at``) so shifted cameras sample the exact same grid.
        return ContentModel.states(self, start, end, step_seconds)


@dataclass
class FleetStreamSpec:
    """One camera of a fleet scenario (engine-agnostic description).

    Attributes:
        stream_id: unique identifier of the camera.
        source: the camera's video source.
        system: optional per-stream policy registry name; ``None`` means the
            fleet run's default system.
        buffer_bytes: optional per-stream buffer override.
        tenant: owning tenant — ignored by the engine, used by the
            ingestion service for admission control and isolation caps.
    """

    stream_id: str
    source: SyntheticVideoSource
    system: Optional[str] = None
    buffer_bytes: Optional[int] = None
    tenant: str = "default"


@dataclass
class FleetScenario:
    """N camera streams derived from one base workload setup.

    The scenario is a pure description — which cameras exist and what they
    see; policies, hardware, and scheduling are bound later by
    :meth:`repro.experiments.runner.ExperimentRunner.run_fleet` or directly
    through :class:`~repro.core.fleet.FleetEngine`.
    """

    name: str
    base: WorkloadSetup
    streams: List[FleetStreamSpec] = field(default_factory=list)

    @property
    def n_streams(self) -> int:
        return len(self.streams)

    def stream_ids(self) -> List[str]:
        return [spec.stream_id for spec in self.streams]

    def stream(self, stream_id: str) -> FleetStreamSpec:
        """The spec of one camera by id."""
        for spec in self.streams:
            if spec.stream_id == stream_id:
                return spec
        raise ConfigurationError(
            f"scenario {self.name!r} has no stream {stream_id!r}"
        )

    def subset(self, stream_ids: List[str], name: Optional[str] = None) -> "FleetScenario":
        """A scenario over a subset of this fleet's cameras, same base setup.

        The sharded ingestion service uses this to hand each worker exactly
        the cameras of its job batch while preserving every per-stream
        override (system, buffer, tenant).
        """
        return FleetScenario(
            name=name or f"{self.name}-subset-{len(stream_ids)}",
            base=self.base,
            streams=[self.stream(stream_id) for stream_id in stream_ids],
        )


def make_fleet_scenario(
    setup: WorkloadSetup,
    n_streams: int,
    phase_shift_seconds: float = 3_600.0,
    heterogeneous: bool = False,
    stream_id_prefix: Optional[str] = None,
    name: Optional[str] = None,
    tenants: Optional[Sequence[str]] = None,
) -> FleetScenario:
    """Replicate ``setup``'s stream across ``n_streams`` cameras.

    Camera 0 is the base camera itself (same content model, same stream id
    semantics); camera *i* sees the content process phase-shifted by
    ``i * phase_shift_seconds`` and, with ``heterogeneous=True``, from its
    own content seed.  Stream ids are ``"<prefix>-00"``, ``"<prefix>-01"``,
    … with the prefix defaulting to the base stream's id.

    Args:
        setup: the base workload setup (workload + source + time window).
        n_streams: number of cameras in the fleet.
        phase_shift_seconds: per-camera time offset of the content process.
        heterogeneous: give every camera its own content seed.
        stream_id_prefix: prefix of the generated stream ids.
        name: scenario name (defaults to ``"<workload>-fleet-<N>"``).
        tenants: tenant ids assigned to the cameras round-robin (for the
            ingestion service's multi-tenant admission control); ``None``
            puts every camera under the ``"default"`` tenant.
    """
    if n_streams < 1:
        raise ConfigurationError("a fleet scenario needs at least one stream")
    if phase_shift_seconds < 0:
        raise ConfigurationError("phase_shift_seconds must be non-negative")
    if tenants is not None and not tenants:
        raise ConfigurationError("tenants must be non-empty when given")

    base_source = setup.source
    base_model = base_source.content_model
    if heterogeneous and n_streams > 1 and not hasattr(base_model, "with_seed"):
        raise ConfigurationError(
            "heterogeneous fleets need a content model with a with_seed() "
            f"method; {type(base_model).__name__} has none"
        )
    prefix = stream_id_prefix or base_source.stream_id
    streams: List[FleetStreamSpec] = []
    for index in range(n_streams):
        model = base_model
        if heterogeneous and index > 0:
            model = base_model.with_seed(getattr(base_model, "seed", 0) + index)
        # Shifts are NOT wrapped modulo a day: bursts and noise are functions
        # of absolute time, so wrapping would make camera 24 of an hourly
        # shifted fleet a byte-identical duplicate of camera 0.
        shift = index * phase_shift_seconds
        if shift > 0:
            model = PhaseShiftedContentModel(model, shift)
        stream_id = f"{prefix}-{index:02d}"
        config = replace(base_source.config, stream_id=stream_id)
        source = SyntheticVideoSource(model, config, size_model=base_source.size_model)
        tenant = tenants[index % len(tenants)] if tenants is not None else "default"
        streams.append(
            FleetStreamSpec(stream_id=stream_id, source=source, tenant=tenant)
        )
    return FleetScenario(
        name=name or f"{setup.workload.name}-fleet-{n_streams}",
        base=setup,
        streams=streams,
    )


def make_multi_tenant_scenario(
    setup: WorkloadSetup,
    streams_per_tenant: Union[Mapping[str, int], Sequence[Tuple[str, int]]],
    phase_shift_seconds: float = 3_600.0,
    heterogeneous: bool = True,
    name: Optional[str] = None,
) -> FleetScenario:
    """A fleet of tenant-owned camera groups over one workload setup.

    The joint-planning companion of :func:`make_fleet_scenario`: instead of
    spreading tenants round-robin over anonymous cameras, each tenant owns a
    contiguous, named block of cameras (``"<tenant>-00"``, …), sized by
    ``streams_per_tenant``.  Cameras are phase-shifted and (by default)
    re-seeded by their *global* index, so tenants see genuinely different
    sample paths of the same content process — the heterogeneity that makes
    a joint budget allocation non-trivial.

    Args:
        setup: the base workload setup shared by every tenant.
        streams_per_tenant: tenant id -> number of cameras (a mapping, or
            ordered ``(tenant, count)`` pairs; mapping iteration order is
            preserved).
        phase_shift_seconds: per-camera (global-index) content time offset.
        heterogeneous: give every camera beyond the first its own seed.
        name: scenario name (defaults to ``"<workload>-tenants-<T>x<N>"``).
    """
    pairs = (
        list(streams_per_tenant.items())
        if isinstance(streams_per_tenant, Mapping)
        else list(streams_per_tenant)
    )
    if not pairs:
        raise ConfigurationError("streams_per_tenant must name at least one tenant")
    seen = set()
    for tenant, count in pairs:
        if not tenant:
            raise ConfigurationError("tenant ids must be non-empty")
        if tenant in seen:
            raise ConfigurationError(f"duplicate tenant {tenant!r}")
        seen.add(tenant)
        if count < 1:
            raise ConfigurationError(
                f"tenant {tenant!r} needs at least one stream, got {count}"
            )

    total = sum(count for _, count in pairs)
    fleet = make_fleet_scenario(
        setup,
        total,
        phase_shift_seconds=phase_shift_seconds,
        heterogeneous=heterogeneous,
    )
    streams: List[FleetStreamSpec] = []
    cursor = 0
    for tenant, count in pairs:
        for local_index in range(count):
            spec = fleet.streams[cursor]
            stream_id = f"{tenant}-{local_index:02d}"
            config = replace(spec.source.config, stream_id=stream_id)
            source = SyntheticVideoSource(
                spec.source.content_model,
                config,
                size_model=spec.source.size_model,
            )
            streams.append(
                FleetStreamSpec(stream_id=stream_id, source=source, tenant=tenant)
            )
            cursor += 1
    return FleetScenario(
        name=name or f"{setup.workload.name}-tenants-{len(pairs)}x{total}",
        base=setup,
        streams=streams,
    )
