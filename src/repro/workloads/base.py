"""Shared workload machinery.

Every workload implements the :class:`~repro.core.interfaces.VETLWorkload`
protocol: it owns a knob space, expands a knob configuration into a task graph
for a segment, and evaluates the (reported and ground-truth) quality of
processing a segment with a configuration.  Evaluations must be deterministic
given (configuration, segment), so the noise the simulated CV operators would
naturally exhibit is generated from a hash of those two inputs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.interfaces import SegmentOutcome
from repro.core.knobs import KnobConfiguration, KnobSpace
from repro.errors import WorkloadError
from repro.video.content import ContentModel
from repro.video.frame import VideoSegment
from repro.video.stream import SegmentColumns, StreamConfig, SyntheticVideoSource
from repro.vision.dag import TaskGraph


@dataclass
class WorkloadSetup:
    """A workload together with the stream it ingests.

    The setup bundles everything an experiment needs: the workload object,
    the video source that produces its stream, and the time window the
    offline phase may use as historical data.
    """

    workload: "BaseWorkload"
    source: SyntheticVideoSource
    history_days: float
    online_days: float

    @property
    def online_start(self) -> float:
        """First timestamp of the online phase (right after the history)."""
        return self.history_days * 86_400.0

    @property
    def online_end(self) -> float:
        return (self.history_days + self.online_days) * 86_400.0


class BaseWorkload:
    """Common functionality of the concrete workloads.

    Args:
        name: workload name.
        knob_space: the registered knobs.
        content_model: content dynamics of the workload's stream (used for the
            representative segment).
        stream_config: stream properties (resolution, fps, segment length).
    """

    def __init__(
        self,
        name: str,
        knob_space: KnobSpace,
        content_model: ContentModel,
        stream_config: Optional[StreamConfig] = None,
    ):
        if not name:
            raise WorkloadError("workload name must be non-empty")
        self.name = name
        self.knob_space = knob_space
        self.content_model = content_model
        self.stream_config = stream_config or StreamConfig(stream_id=f"{name}-camera")
        self._source = SyntheticVideoSource(content_model, self.stream_config)
        # Per-configuration quality-model terms (robustness etc.) are pure
        # functions of the configuration; memoize them across segments.
        self._config_term_cache: Dict[Tuple[str, KnobConfiguration], float] = {}

    # ------------------------------------------------------------------ #
    # VETLWorkload protocol pieces shared by all workloads
    # ------------------------------------------------------------------ #
    def make_source(self) -> SyntheticVideoSource:
        """A video source producing this workload's stream."""
        return SyntheticVideoSource(self.content_model, self.stream_config)

    def representative_segment(self) -> VideoSegment:
        """A busy mid-day segment used for runtime profiling.

        Runtime profiling should reflect typical-to-heavy content so the
        profiled runtimes are conservative, mirroring how the paper profiles
        on sampled real segments.
        """
        midday_index = int((12.5 * 3_600.0) / self.stream_config.segment_seconds)
        return self._source.segment_at(midday_index)

    def build_task_graph(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> TaskGraph:
        raise NotImplementedError

    def evaluate(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> SegmentOutcome:
        raise NotImplementedError

    def evaluate_many(
        self, pairs: Sequence[Tuple[KnobConfiguration, VideoSegment]]
    ) -> List[SegmentOutcome]:
        """Batched :meth:`evaluate` used by the offline pipeline.

        Consecutive pairs sharing one configuration are grouped and routed
        through :meth:`evaluate_config_batch`, so workloads whose quality
        model vectorizes over segments (e.g. the EV counter) process whole
        runs of segments with array ops.  Results keep the input order.
        """
        outcomes: List[SegmentOutcome] = []
        position = 0
        n_pairs = len(pairs)
        while position < n_pairs:
            configuration = pairs[position][0]
            stop = position + 1
            while stop < n_pairs and pairs[stop][0] == configuration:
                stop += 1
            segments = [segment for _, segment in pairs[position:stop]]
            outcomes.extend(self.evaluate_config_batch(configuration, segments))
            position = stop
        return outcomes

    def evaluate_config_batch(
        self, configuration: KnobConfiguration, segments: Sequence[VideoSegment]
    ) -> List[SegmentOutcome]:
        """Evaluate many segments under one configuration.

        The default loops :meth:`evaluate`; workloads whose quality model
        vectorizes over segments override this.
        """
        return [self.evaluate(configuration, segment) for segment in segments]

    def quality_weight(self, segment: VideoSegment) -> float:
        """How much this segment contributes to the workload's quality metric.

        The paper's quality metrics are entity weighted (person-seconds,
        tracked pedestrians, ingested streams), so a busy rush-hour segment
        matters much more than an empty night-time one.  Workloads with a
        different notion of weight override this.
        """
        return float(max(segment.ground_truth_objects, 1))

    def quality_weight_columns(self, columns: SegmentColumns) -> np.ndarray:
        """Batched :meth:`quality_weight` over a whole segment batch.

        Row ``i`` equals ``quality_weight(columns.segment(i))`` bit for bit.
        Subclasses that override the scalar method but not this one fall
        back to per-row scalar calls automatically, so custom weights stay
        correct without a matching columnar override.
        """
        if type(self).quality_weight is not BaseWorkload.quality_weight:
            return np.array(
                [self.quality_weight(columns.segment(i)) for i in range(len(columns))],
                dtype=float,
            )
        return np.maximum(columns.ground_truth_objects, 1).astype(float)

    # ------------------------------------------------------------------ #
    # Per-configuration memoization
    # ------------------------------------------------------------------ #
    def _config_term(
        self, key: str, configuration: KnobConfiguration, compute: Callable[[KnobConfiguration], float]
    ) -> float:
        """Memoized per-configuration quality-model term.

        ``compute(configuration)`` must be a pure function of the
        configuration; the cached value is returned on every later call with
        the same ``key``/configuration, which removes the dominant repeated
        work (log/dict lookups) from per-segment ``evaluate`` calls.
        """
        cache_key = (key, configuration)
        value = self._config_term_cache.get(cache_key)
        if value is None:
            value = compute(configuration)
            self._config_term_cache[cache_key] = value
        return value

    # ------------------------------------------------------------------ #
    # Deterministic noise
    # ------------------------------------------------------------------ #
    def _noise(
        self, configuration: KnobConfiguration, segment: VideoSegment, channel: str, scale: float
    ) -> float:
        """Deterministic zero-mean noise in ``[-scale, scale]``.

        The value depends only on the workload, the configuration, the segment
        index and a channel label, so repeated evaluations of the same
        (configuration, segment) pair agree exactly.
        """
        key = f"{self.name}|{configuration.short_label()}|{segment.segment_index}|{channel}"
        digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
        unit = int.from_bytes(digest, "little") / float(2**64)
        return (unit * 2.0 - 1.0) * scale

    @staticmethod
    def _clip01(value: float) -> float:
        return float(min(max(value, 0.0), 1.0))
