"""COVID-19 safety-measure monitoring workload (Section 5.2, Appendix J).

Pipeline: YOLOv5 pedestrian detection (detect-to-track), KCF tracking on the
intermediary frames, homography-based social-distance measurement and a
ResNet-based mask classifier for every tracked pedestrian.  The stream is a
busy shopping street with pronounced rush hours.

Knobs (cheap value first):

* ``frame_rate`` — frames per second actually processed
  ({1, 5, 10, 15, 30} FPS);
* ``det_interval`` — run the object detector every N processed frames
  ({60, 30, 5, 1});
* ``tiles`` — tiles per frame side for detection ({1, 2}, i.e. 1x1 or 2x2).

Quality is the fraction of ground-truth person-seconds that end up recorded
(detected and tracked), which is what the paper's ``person * seconds`` metric
measures.  Cheap configurations capture almost everything at night but miss
heavily occluded rush-hour pedestrians; expensive configurations are robust
everywhere.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.interfaces import SegmentOutcome
from repro.core.knobs import KnobConfiguration, KnobSpace
from repro.video.codec import DecodeCostModel
from repro.video.content import ContentModel, DiurnalProfile
from repro.video.frame import VideoSegment
from repro.video.stream import StreamConfig
from repro.vision.classifier import SimulatedClassifier
from repro.vision.dag import Task, TaskGraph
from repro.vision.detector import SimulatedObjectDetector
from repro.vision.homography import HomographyDistance
from repro.vision.tracker import SimulatedTracker
from repro.vision.udf import OperatorCost
from repro.warehouse.loader import DetectionRecord, TrackRecord
from repro.workloads.base import BaseWorkload, WorkloadSetup

_NATIVE_FPS = 30.0
#: Mean time a pedestrian stays in the camera's view, in seconds.
_PEDESTRIAN_DWELL_SECONDS = 15.0


def _covid_knob_space() -> KnobSpace:
    space = KnobSpace()
    space.register_knob("frame_rate", (1, 5, 10, 15, 30))
    space.register_knob("det_interval", (60, 30, 5, 1))
    space.register_knob("tiles", (1, 2))
    return space


def _covid_content_model(seed: int = 7) -> ContentModel:
    """A busy shopping street: strong rush hours, frequent pedestrian groups."""
    return ContentModel(
        seed=seed,
        diurnal=DiurnalProfile(
            night_level=0.08,
            day_level=0.5,
            morning_peak_hour=8.5,
            evening_peak_hour=18.0,
            peak_level=0.95,
            peak_width_hours=1.8,
        ),
        burst_rate_per_hour=45.0,
        burst_duration_seconds=40.0,
        burst_magnitude=0.35,
    )


class CovidWorkload(BaseWorkload):
    """The COVID safety-measure V-ETL job."""

    def __init__(
        self,
        content_model: Optional[ContentModel] = None,
        stream_config: Optional[StreamConfig] = None,
        seed: int = 7,
    ):
        super().__init__(
            name="covid",
            knob_space=_covid_knob_space(),
            content_model=content_model or _covid_content_model(seed),
            stream_config=stream_config
            or StreamConfig(stream_id="covid-shibuya", segment_seconds=2.0),
        )
        self.seed = seed
        self.detector = SimulatedObjectDetector(family="yolo", seed=seed)
        self.tracker = SimulatedTracker(seed=seed)
        self.mask_classifier = SimulatedClassifier(family="mask_classifier", seed=seed)
        self.homography = HomographyDistance()
        self.decode = DecodeCostModel()

    # ------------------------------------------------------------------ #
    # Cost model: task graph per (configuration, segment)
    # ------------------------------------------------------------------ #
    def build_task_graph(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> TaskGraph:
        frame_rate = float(configuration["frame_rate"])
        det_interval = int(configuration["det_interval"])
        tiles_per_side = int(configuration["tiles"])
        tiles = tiles_per_side * tiles_per_side

        arriving_frames = segment.frame_count
        processed_frames = max(segment.duration * frame_rate, 1.0)
        detector_invocations = processed_frames / det_interval
        expected_objects = max(segment.ground_truth_objects, 1)

        graph = TaskGraph()
        decode_cost = OperatorCost(
            on_prem_seconds=self.decode.segment_decode_seconds(
                arriving_frames, segment.width, segment.height
            ),
            cloud_seconds=0.0,
            cloud_dollars=0.0,
            upload_bytes=0,
            download_bytes=0,
        )
        graph.add_task(Task("decode", "decoder", decode_cost, invocations=arriving_frames))

        # The pipeline naturally parallelizes across detector invocations:
        # each invocation detects on one frame, the per-object trackers follow
        # the detections until the next invocation, and the mask classifier
        # runs on every detected pedestrian crop.  Model one chain per
        # detector invocation (decode -> detect_i -> track_i -> classify_i) so
        # throughput scales with the provisioned cores exactly as the paper's
        # Appendix-M micro DAGs do.
        per_detection = self.detector.invocation_cost(
            model_size="medium", tiles=tiles, width=segment.width, height=segment.height
        )
        track_cost = self.tracker.invocation_cost(
            objects=expected_objects, frames=int(processed_frames)
        )
        classify_cost = self.mask_classifier.invocation_cost(
            model_size="medium", items=expected_objects
        ).scaled(max(detector_invocations, 1.0))

        chains = min(8, max(int(math.ceil(detector_invocations)), 1))
        per_chain = detector_invocations / chains
        chain_tails = []
        for index in range(chains):
            detect_name = f"detect_{index}"
            graph.add_task(
                Task(
                    detect_name,
                    "yolo-detector",
                    per_detection.scaled(per_chain),
                    invocations=max(int(round(per_chain)), 1),
                ),
                depends_on=["decode"],
            )
            track_name = f"track_{index}"
            graph.add_task(
                Task(track_name, "kcf-tracker", track_cost.scaled(1.0 / chains)),
                depends_on=[detect_name],
            )
            classify_name = f"mask_classify_{index}"
            graph.add_task(
                Task(classify_name, "mask-classifier", classify_cost.scaled(1.0 / chains)),
                depends_on=[track_name],
            )
            chain_tails.append(classify_name)

        homography_cost = self.homography.invocation_cost(objects=expected_objects).scaled(
            max(detector_invocations, 1.0)
        )
        graph.add_task(Task("distance", "homography", homography_cost), depends_on=chain_tails)
        return graph

    # ------------------------------------------------------------------ #
    # Quality model
    # ------------------------------------------------------------------ #
    def _robustness(self, configuration: KnobConfiguration) -> float:
        """How reliably the configuration handles difficult content, in [0, 1].

        Three effects matter for rush-hour robustness: how often the detector
        re-initializes tracks (detections per second of video), how densely
        the video is sampled (tracking continuity through occlusions), and
        whether tiling recovers the many small, partially occluded pedestrians
        of a packed scene.
        """
        frame_rate = float(configuration["frame_rate"])
        det_interval = int(configuration["det_interval"])
        tiles = int(configuration["tiles"])
        detections_per_second = frame_rate / det_interval
        det_term = math.log1p(detections_per_second) / math.log1p(_NATIVE_FPS)
        frame_term = math.log(frame_rate) / math.log(_NATIVE_FPS)
        tile_term = 1.0 if tiles > 1 else 0.0
        return self._clip01(0.35 * det_term + 0.25 * frame_term + 0.40 * tile_term)

    def _difficulty(self, segment: VideoSegment) -> float:
        content = segment.content
        return self._clip01(
            1.0 * content.occlusion
            + 0.25 * (1.0 - content.lighting) * content.object_density
            + 0.15 * content.motion * content.object_density
        )

    def evaluate(
        self, configuration: KnobConfiguration, segment: VideoSegment
    ) -> SegmentOutcome:
        frame_rate = float(configuration["frame_rate"])
        det_interval = int(configuration["det_interval"])
        tiles_per_side = int(configuration["tiles"])
        content = segment.content

        robustness = self._config_term("robustness", configuration, self._robustness)
        difficulty = self._difficulty(segment)
        # Cheap configurations lose a small fraction even on easy content
        # (missed small/fast pedestrians); difficult content amplifies the gap.
        easy_loss = 0.05 * (1.0 - robustness)
        fragility = (1.0 - robustness)
        captured_fraction = self._clip01((1.0 - difficulty * fragility) * (1.0 - easy_loss))

        # Detection latency: pedestrians entering between detector runs are
        # picked up late, losing a slice of their person-seconds.
        detection_gap_seconds = det_interval / max(frame_rate, 1e-6)
        latency_loss = min(detection_gap_seconds / (2.0 * _PEDESTRIAN_DWELL_SECONDS), 0.5)
        captured_fraction *= 1.0 - latency_loss * (0.3 + 0.7 * content.activity)

        noise = self._noise(configuration, segment, "quality", 0.02)
        true_quality = self._clip01(captured_fraction + noise)

        # Reported quality: person*seconds recorded, observable through the
        # tracker's failure reports and detector confidences.  It tracks the
        # true quality closely with its own small measurement noise.
        report_noise = self._noise(configuration, segment, "report", 0.03)
        reported_quality = self._clip01(captured_fraction + report_noise)

        pedestrians = segment.ground_truth_objects
        tracked = int(round(pedestrians * true_quality))
        detections = self.detector.detect_segment(
            content,
            pedestrians,
            model_size="medium",
            tiles=tiles_per_side * tiles_per_side,
            sampling_fraction=max(frame_rate / _NATIVE_FPS, 1e-3),
        )
        violations = int(round(tracked * content.occlusion * 0.5))

        warehouse_rows = {
            "detections": [
                DetectionRecord(
                    camera_id=segment.stream_id,
                    segment_index=segment.segment_index,
                    timestamp=segment.start_time,
                    category="person",
                    count=tracked,
                    mean_confidence=detections.mean_confidence,
                )
            ],
            "tracks": [
                TrackRecord(
                    camera_id=segment.stream_id,
                    segment_index=segment.segment_index,
                    timestamp=segment.start_time,
                    tracked_objects=tracked,
                    lost_tracks=max(pedestrians - tracked, 0),
                    mean_certainty=reported_quality,
                )
            ],
        }
        return SegmentOutcome(
            reported_quality=reported_quality,
            true_quality=true_quality,
            entities=float(tracked),
            warehouse_rows=warehouse_rows,
        )


def make_covid_setup(
    history_days: float = 2.0,
    online_days: float = 1.0,
    segment_seconds: float = 2.0,
    seed: int = 7,
) -> WorkloadSetup:
    """A ready-to-run COVID workload setup.

    The paper uses 16 days of history and 8 days of online video; the defaults
    here are smaller so examples and tests finish quickly, and the benchmarks
    pass larger values.
    """
    workload = CovidWorkload(
        stream_config=StreamConfig(stream_id="covid-shibuya", segment_seconds=segment_seconds),
        seed=seed,
    )
    return WorkloadSetup(
        workload=workload,
        source=workload.make_source(),
        history_days=history_days,
        online_days=online_days,
    )
