"""Exception hierarchy shared by all Skyscraper reproduction subsystems.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors such as
``TypeError`` or ``KeyError`` coming from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when a user supplies an invalid configuration value.

    Examples include registering a knob with an empty domain, provisioning a
    cluster with zero cores, or requesting a negative budget.
    """


class BufferOverflowError(ReproError):
    """Raised when the bounded video buffer would exceed its byte capacity.

    The V-ETL contract (Equation 1 of the paper) forbids unbounded lag; a
    buffer overflow therefore is a hard failure of the ingestion run.  The
    Chameleon* baseline crashes with this error on under-provisioned hardware,
    which is exactly the behaviour reported in Section 5.3.
    """

    def __init__(self, requested_bytes: int, free_bytes: int, capacity_bytes: int):
        self.requested_bytes = requested_bytes
        self.free_bytes = free_bytes
        self.capacity_bytes = capacity_bytes
        super().__init__(
            f"buffer overflow: requested {requested_bytes} B but only "
            f"{free_bytes} B of {capacity_bytes} B are free"
        )


class AdmissionError(ConfigurationError):
    """Raised when a submission is refused at admission.

    Covers per-tenant queue quotas (the service dispatcher) and joint-
    planning SLO rejections (:mod:`repro.planning.admission`).  Lives here
    rather than in the service layer so the planning subsystem can raise it
    without importing the service package.
    """


class BudgetExceededError(ReproError):
    """Raised when a processing plan would exceed the user's budget."""


class NotFittedError(ReproError):
    """Raised when an online component is used before the offline phase ran."""


class PlanningError(ReproError):
    """Raised when the knob planner cannot produce a feasible knob plan."""


class PlacementError(ReproError):
    """Raised when no task placement can ingest a configuration in time."""


class SchedulingError(ReproError):
    """Raised by the cluster executor when a task cannot be scheduled."""


class QueryError(ReproError):
    """Raised by the warehouse query layer for malformed queries."""


class WorkloadError(ReproError):
    """Raised when a workload definition is inconsistent."""
