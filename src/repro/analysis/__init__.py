"""repro-lint: AST-based invariant checks for the reproduction.

The repo's headline guarantees — bit-for-bit hot-path parity, cross-process
ledger conservation, content-addressed stage-cache reuse — are dynamic
properties that a *new* unseeded RNG call or an out-of-lock buffer read can
silently break without failing the tests that pinned them.  This package
turns those implicit invariants into machine-checked rules that run at PR
time over the AST of ``src/repro/**``::

    PYTHONPATH=src python -m repro.analysis [--format json|text]
                                            [--only RULE] [--baseline FILE]

Rules register through :func:`~repro.analysis.engine.register_rule` (the
same registry idiom as :func:`repro.registry.register_policy`); deliberate
violations live in a committed, justification-carrying baseline
(:mod:`repro.analysis.baseline`).  See the built-ins in
:mod:`repro.analysis.rules`.
"""

from repro.analysis.baseline import (
    BaselineEntry,
    BaselineMatch,
    load_baseline,
    match_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    AnalysisResult,
    Finding,
    RuleSpec,
    register_rule,
    rule_names,
    rule_spec,
    run_rules,
    unregister_rule,
)
from repro.analysis.project import Project, SourceModule

__all__ = [
    "AnalysisResult",
    "BaselineEntry",
    "BaselineMatch",
    "Finding",
    "Project",
    "RuleSpec",
    "SourceModule",
    "load_baseline",
    "match_baseline",
    "register_rule",
    "rule_names",
    "rule_spec",
    "run_rules",
    "unregister_rule",
    "write_baseline",
]
