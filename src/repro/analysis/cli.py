"""Command-line driver of repro-lint: ``python -m repro.analysis``.

Runs the registered rules over the repository, filters the findings through
the committed baseline and exits nonzero when anything non-baselined (or a
stale baseline entry) remains — the ``analysis-smoke`` CI job is exactly this
invocation.

Usage::

    python -m repro.analysis                     # text report, all rules
    python -m repro.analysis --format json       # machine-readable report
    python -m repro.analysis --only determinism  # one rule
    python -m repro.analysis --list-rules        # what is registered
    python -m repro.analysis --write-baseline    # bootstrap baseline entries
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import rules as _rules  # noqa: F401  (registers the built-ins)
from repro.analysis.baseline import load_baseline, match_baseline, write_baseline
from repro.analysis.engine import rule_names, rule_spec, run_rules
from repro.analysis.project import Project
from repro.errors import ConfigurationError

#: Default baseline location, next to the analysis package itself.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def _detect_root(argument: Optional[str]) -> Path:
    """The repository root: ``--root``, else cwd, else the package's repo."""
    if argument is not None:
        return Path(argument).resolve()
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    # src/repro/analysis/cli.py -> parents[3] is the repository root.
    return Path(__file__).resolve().parents[3]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: static invariant checks for the reproduction",
    )
    parser.add_argument(
        "--root", default=None, help="repository root (default: auto-detected)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="RULE",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE.name} next to the package)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write the current findings as baseline entries with TODO "
            "justifications (the baseline stays invalid until each TODO is "
            "replaced) and exit"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the analyzer; returns the process exit code."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_id in rule_names():
            spec = rule_spec(rule_id)
            print(f"{rule_id:18s} {spec.description}  [scope: {spec.scope}]")
        return 0

    try:
        root = _detect_root(options.root)
        project = Project.from_root(root)
        result = run_rules(project, only=options.only)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    baseline_path = (
        Path(options.baseline) if options.baseline is not None else DEFAULT_BASELINE
    )
    if options.write_baseline:
        count, path = write_baseline(baseline_path, result.findings)
        print(f"wrote {count} entries to {path}; replace every TODO justification")
        return 0

    try:
        entries = [] if options.no_baseline else load_baseline(baseline_path)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # Entries for rules that did not run this invocation (--only) cannot be
    # judged stale — only the full run polices staleness.
    entries = [entry for entry in entries if entry.rule in result.rules_run]
    match = match_baseline(result.findings, entries)
    violations = bool(match.active) or bool(match.stale)

    if options.format == "json":
        document = {
            "root": str(root),
            "rules": result.rules_run,
            "findings": [finding.as_dict() for finding in match.active],
            "suppressed": len(match.suppressed),
            "stale_baseline": [
                {"rule": entry.rule, "path": entry.path, "symbol": entry.symbol}
                for entry in match.stale
            ],
            "status": "violations" if violations else "ok",
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for finding in match.active:
            print(finding.format_text())
        for entry in match.stale:
            print(
                f"stale baseline entry {entry.key} matched no finding — "
                "remove it from the baseline"
            )
        summary = (
            f"{len(match.active)} finding(s), {len(match.suppressed)} baselined, "
            f"{len(match.stale)} stale baseline entr(ies); "
            f"rules: {', '.join(result.rules_run)}"
        )
        print(("FAIL: " if violations else "OK: ") + summary)
    return 1 if violations else 0
