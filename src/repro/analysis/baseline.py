"""The committed exception list of the static analyzer.

A baseline entry acknowledges one finding as *deliberate* — every entry must
carry a non-empty ``justification`` saying why the violation is correct, so
the file doubles as documentation of the repo's intentional exceptions.
Entries are keyed by ``(rule, path, symbol)`` (never by line number), so a
baseline survives unrelated edits to the file it points into.

The baseline is strict in both directions: a finding without an entry fails
the run, and an entry without a finding is *stale* and fails the run too —
otherwise fixed violations would leave silent wildcards behind that mask the
next regression at the same spot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.engine import Finding
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BaselineEntry:
    """One acknowledged finding.

    Attributes:
        rule: rule id of the acknowledged finding.
        path: repository-relative path it points into.
        symbol: the finding's stable symbol.
        justification: why this violation is deliberate (required).
    """

    rule: str
    path: str
    symbol: str
    justification: str

    @property
    def key(self) -> str:
        """Match key against :attr:`Finding.baseline_key`."""
        return f"{self.rule}::{self.path}::{self.symbol}"


@dataclass
class BaselineMatch:
    """Result of filtering findings through a baseline.

    Attributes:
        active: findings not covered by the baseline (these fail the run).
        suppressed: findings matched by an entry.
        stale: entries that matched no current finding (these fail too).
    """

    active: List[Finding]
    suppressed: List[Finding]
    stale: List[BaselineEntry]


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse the baseline file; a missing file is an empty baseline.

    Raises :class:`ConfigurationError` on malformed documents, unknown keys
    or entries whose justification is missing/empty — an unjustified entry is
    not an exception, it is a suppressed bug.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"baseline {path} is not valid JSON: {error}")
    entries = document.get("entries") if isinstance(document, dict) else None
    if not isinstance(entries, list):
        raise ConfigurationError(
            f"baseline {path} must be an object with an 'entries' list"
        )
    required = {"rule", "path", "symbol", "justification"}
    parsed: List[BaselineEntry] = []
    for index, raw in enumerate(entries):
        if not isinstance(raw, dict) or set(raw) != required:
            raise ConfigurationError(
                f"baseline entry #{index} must have exactly the keys "
                f"{sorted(required)}; got {sorted(raw) if isinstance(raw, dict) else raw!r}"
            )
        if not str(raw["justification"]).strip() or "TODO" in raw["justification"]:
            raise ConfigurationError(
                f"baseline entry #{index} ({raw['rule']}::{raw['path']}::"
                f"{raw['symbol']}) lacks a real justification"
            )
        parsed.append(
            BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                symbol=str(raw["symbol"]),
                justification=str(raw["justification"]),
            )
        )
    keys = [entry.key for entry in parsed]
    duplicates = sorted({key for key in keys if keys.count(key) > 1})
    if duplicates:
        raise ConfigurationError(f"baseline {path} has duplicate entries: {duplicates}")
    return parsed


def match_baseline(
    findings: List[Finding], entries: List[BaselineEntry]
) -> BaselineMatch:
    """Split findings into active/suppressed and detect stale entries."""
    by_key: Dict[str, BaselineEntry] = {entry.key: entry for entry in entries}
    active: List[Finding] = []
    suppressed: List[Finding] = []
    matched: set = set()
    for finding in findings:
        entry = by_key.get(finding.baseline_key)
        if entry is None:
            active.append(finding)
        else:
            suppressed.append(finding)
            matched.add(entry.key)
    stale = [entry for entry in entries if entry.key not in matched]
    return BaselineMatch(active=active, suppressed=suppressed, stale=stale)


def write_baseline(path: Path, findings: List[Finding]) -> Tuple[int, Path]:
    """Write a baseline skeleton covering ``findings`` (justifications TODO).

    The skeleton deliberately fails :func:`load_baseline` until every
    placeholder justification is replaced — ``--write-baseline`` bootstraps
    the file, a human signs off each entry.
    """
    entries = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "symbol": finding.symbol,
            "justification": f"TODO: justify ({finding.message})",
        }
        for finding in findings
    ]
    document = {"entries": entries}
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return len(entries), path
