"""The rule registry and finding model of repro-lint.

Rules register themselves exactly like policies do in
:mod:`repro.registry` — a decorator puts a :class:`RuleSpec` into a module
dictionary under a stable id, and the driver (:func:`run_rules`) looks rules
up by name, so a new invariant becomes machine-checked by writing one
function and decorating it::

    from repro.analysis.engine import Finding, register_rule

    @register_rule(
        "no-eval",
        description="eval() is banned in the reproduction",
        hint="replace eval with an explicit dispatch table",
    )
    def _check_no_eval(project):
        for module in project.modules:
            for node in ast.walk(module.tree):
                ...
                yield Finding(rule="no-eval", path=module.relpath, ...)

A rule receives the whole :class:`~repro.analysis.project.Project` (not one
file), because several invariants are cross-file: registry hygiene must see
every test, cache-key completeness must line stage bodies up against the key
builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.project import Project
from repro.errors import ConfigurationError

#: The built-in pseudo-rule id used for files that fail to parse.
PARSE_ERROR_RULE = "parse-error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    Attributes:
        rule: id of the rule that fired.
        path: repository-relative posix path of the offending file.
        line: 1-based line of the offending node.
        column: 0-based column of the offending node.
        symbol: stable identity of *what* violated the rule (an API name,
            ``Class.attribute``, ``stage:parameter`` …) — together with
            ``rule`` and ``path`` this keys baseline entries, so findings
            survive unrelated line drift.
        message: human-readable statement of the violation.
        hint: how to fix it.
    """

    rule: str
    path: str
    line: int
    column: int
    symbol: str
    message: str
    hint: str = ""

    @property
    def baseline_key(self) -> str:
        """Line-independent identity used to match baseline entries."""
        return f"{self.rule}::{self.path}::{self.symbol}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the ``--format json`` row)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "symbol": self.symbol,
            "message": self.message,
            "hint": self.hint,
        }

    def format_text(self) -> str:
        """The one-line ``--format text`` rendering."""
        text = f"{self.path}:{self.line}:{self.column + 1}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


#: A rule body: yields findings over the whole project.
RuleCheck = Callable[[Project], Iterable[Finding]]


@dataclass(frozen=True)
class RuleSpec:
    """A registered rule: id, body and documentation.

    Attributes:
        rule_id: stable id (``--only`` selector, finding/baseline key).
        check: the rule body.
        description: one-line summary (shown by ``--list-rules``).
        hint: default fix hint attached to findings that carry none.
        scope: human-readable statement of which files the rule patrols.
    """

    rule_id: str
    check: RuleCheck
    description: str
    hint: str = ""
    scope: str = "src/repro/**"


_RULES: Dict[str, RuleSpec] = {}


def register_rule(
    rule_id: str,
    *,
    description: str,
    hint: str = "",
    scope: str = "src/repro/**",
) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator registering a rule body under ``rule_id``.

    Mirrors :func:`repro.registry.register_policy`: duplicate ids fail loudly
    at import time so a typo cannot silently shadow an existing rule.
    """
    if not rule_id:
        raise ConfigurationError("rule id must be non-empty")

    def decorate(check: RuleCheck) -> RuleCheck:
        """Register ``check`` under the decorator's rule id."""
        if rule_id in _RULES:
            raise ConfigurationError(f"rule {rule_id!r} is already registered")
        _RULES[rule_id] = RuleSpec(
            rule_id=rule_id,
            check=check,
            description=description,
            hint=hint,
            scope=scope,
        )
        return check

    return decorate


def unregister_rule(rule_id: str) -> None:
    """Remove a registered rule (for tests of the registry itself)."""
    _RULES.pop(rule_id, None)


def rule_names() -> List[str]:
    """Ids of every registered rule, sorted."""
    return sorted(_RULES)


def rule_spec(rule_id: str) -> RuleSpec:
    """The :class:`RuleSpec` registered under ``rule_id``."""
    if rule_id not in _RULES:
        raise ConfigurationError(
            f"unknown rule {rule_id!r}; registered rules: {rule_names()}"
        )
    return _RULES[rule_id]


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run (before baseline filtering).

    Attributes:
        findings: every finding, sorted by (path, line, rule).
        rules_run: ids of the rules that executed.
    """

    findings: List[Finding] = field(default_factory=list)
    rules_run: List[str] = field(default_factory=list)


def run_rules(
    project: Project, only: Optional[Sequence[str]] = None
) -> AnalysisResult:
    """Run the selected (default: all) rules over ``project``.

    Files that failed to parse surface as findings of the ``parse-error``
    pseudo-rule — a checker that silently skips unparseable files would be
    trivially defeated.
    """
    selected = list(only) if only else rule_names()
    specs = [rule_spec(rule_id) for rule_id in selected]
    findings: List[Finding] = [
        Finding(
            rule=PARSE_ERROR_RULE,
            path=relpath,
            line=1,
            column=0,
            symbol="syntax",
            message=f"file does not parse: {error}",
            hint="fix the syntax error; unparseable files cannot be checked",
        )
        for relpath, error in project.parse_errors
    ]
    for spec in specs:
        for finding in spec.check(project):
            if not finding.hint and spec.hint:
                finding = Finding(
                    rule=finding.rule,
                    path=finding.path,
                    line=finding.line,
                    column=finding.column,
                    symbol=finding.symbol,
                    message=finding.message,
                    hint=spec.hint,
                )
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.symbol))
    return AnalysisResult(findings=findings, rules_run=[spec.rule_id for spec in specs])
