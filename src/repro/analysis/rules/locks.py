"""Ledger lock discipline: shared-memory state only moves under the lock.

:class:`~repro.service.ledger.SharedDailyLedger` guarantees cross-process
conservation by guarding raw shared-memory day buckets with one
``multiprocessing.Lock`` — a guarantee that silently evaporates the moment a
new method reads or writes a bucket outside the critical section.  The
dynamic conservation tests only catch the races they happen to provoke; this
rule catches the *access*.

The rule is structural, not name-based: any class whose ``__init__`` binds

* at least one shared buffer — ``self.x = multiprocessing.Array/Value/
  RawArray/RawValue(...)`` (any import alias), and
* at least one lock — ``self.y = multiprocessing.Lock()/RLock()`` (or
  ``threading``),

gets every later ``self.x`` load, store, subscript or iteration checked for
being *lexically* inside a ``with self.y:`` block.  ``__init__`` itself is
exempt (the buffers are born there, before any worker can race).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.engine import Finding, register_rule
from repro.analysis.project import Project, dotted_name

RULE_ID = "ledger-lock"

_BUFFER_FACTORIES = {"Array", "Value", "RawArray", "RawValue"}
_LOCK_FACTORIES = {"Lock", "RLock"}


def _self_attr_assigns(init: ast.FunctionDef) -> Iterator[tuple]:
    """``(attr_name, value_node)`` for every ``self.<attr> = ...`` in ``__init__``."""
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr, node.value


def _factory_tail(value: ast.AST) -> str:
    """Last dotted segment of a call's callee (``mp.Lock`` -> ``Lock``)."""
    if not isinstance(value, ast.Call):
        return ""
    name = dotted_name(value.func)
    return name.split(".")[-1] if name else ""


def _shared_state(cls: ast.ClassDef) -> tuple:
    """``(buffer_attrs, lock_attrs)`` declared by the class's ``__init__``."""
    buffers: Set[str] = set()
    locks: Set[str] = set()
    for statement in cls.body:
        if isinstance(statement, ast.FunctionDef) and statement.name == "__init__":
            for attr, value in _self_attr_assigns(statement):
                tail = _factory_tail(value)
                if tail in _BUFFER_FACTORIES:
                    buffers.add(attr)
                elif tail in _LOCK_FACTORIES:
                    locks.add(attr)
    return buffers, locks


def _is_lock_guard(item: ast.withitem, locks: Set[str]) -> bool:
    """Whether one ``with`` item acquires ``self.<lock>``."""
    expr = item.context_expr
    # both `with self._lock:` and `with self._lock as held:` count
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in locks
    )


def _walk_method(
    node: ast.AST,
    locked: bool,
    buffers: Set[str],
    locks: Set[str],
    cls_name: str,
    relpath: str,
    findings: List[Finding],
) -> None:
    """Depth-first walk tracking whether the lexical position holds the lock."""
    if isinstance(node, ast.With):
        holds = locked or any(_is_lock_guard(item, locks) for item in node.items)
        for item in node.items:
            _walk_method(item.context_expr, locked, buffers, locks, cls_name, relpath, findings)
        for child in node.body:
            _walk_method(child, holds, buffers, locks, cls_name, relpath, findings)
        return
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in buffers
        and not locked
    ):
        access = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
        findings.append(
            Finding(
                rule=RULE_ID,
                path=relpath,
                line=node.lineno,
                column=node.col_offset,
                symbol=f"{cls_name}.{node.attr}",
                message=(
                    f"{access} of shared-memory buffer self.{node.attr} outside "
                    f"a 'with self.{sorted(locks)[0]}' block"
                ),
            )
        )
        return  # the children (Name 'self') need no visit
    for child in ast.iter_child_nodes(node):
        _walk_method(child, locked, buffers, locks, cls_name, relpath, findings)


@register_rule(
    RULE_ID,
    description=(
        "reads/writes of multiprocessing shared-memory buffers must sit "
        "lexically inside the owning class's 'with self._lock' block"
    ),
    hint="move the access inside the critical section (or snapshot under the lock)",
)
def check_ledger_locks(project: Project) -> Iterator[Finding]:
    """Flag shared-buffer accesses outside the owning lock, class by class."""
    for module in project.modules:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            buffers, locks = _shared_state(cls)
            if not buffers or not locks:
                continue
            findings: List[Finding] = []
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name == "__init__":
                    continue
                for statement in method.body:
                    _walk_method(
                        statement, False, buffers, locks, cls.name, module.relpath, findings
                    )
            yield from findings
