"""Determinism rule: no ambient randomness or wall-clock in parity modules.

The columnar hot path (PR 8), the adaptive-disabled path (PR 9) and the
offline pipeline (PR 3) are all pinned by bit-for-bit parity oracles.  Those
oracles only hold while every random draw flows from an explicitly seeded
generator and every timestamp is an input, so inside the modules that back
them (``core/``, ``video/``, ``workloads/``, ``adaptation/``) this rule bans:

* the stdlib ``random`` module-level API (``random.random()``,
  ``random.randint()``, ...) — one hidden global stream; seeded
  ``random.Random(seed)``/``SystemRandom`` instances stay legal;
* the legacy NumPy global-state API (``np.random.seed``, ``np.random.rand``,
  ...) — ``np.random.default_rng(seed)`` and explicit ``Generator`` /
  ``SeedSequence`` / ``RandomState`` construction stay legal;
* wall-clock reads: ``time.time()`` / ``time.time_ns()`` and
  ``datetime.now()`` / ``utcnow()`` / ``today()`` — timestamps must arrive as
  parameters.  ``time.perf_counter()`` stays legal: stage-runtime reports are
  measurements, not replayed state.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.engine import Finding, register_rule
from repro.analysis.project import PARITY_SCOPES, Project, dotted_name

RULE_ID = "determinism"

#: Explicitly constructed (seedable) entry points of each random API.
_RANDOM_ALLOWED = {"Random", "SystemRandom"}
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "RandomState",
    "PCG64",
    "Philox",
    "BitGenerator",
}
_TIME_BANNED = {"time", "time_ns"}
_DATETIME_BANNED = {"now", "utcnow", "today"}

_HINTS = {
    "random": "draw from a seeded instance: rng = random.Random(seed)",
    "np.random": "draw from a seeded generator: rng = np.random.default_rng(seed)",
    "time": "take the timestamp as a parameter; wall-clock reads break replay parity",
    "datetime": "take the timestamp as a parameter; wall-clock reads break replay parity",
}


class _ImportMap:
    """Which local names refer to the random/numpy/time/datetime APIs."""

    def __init__(self, tree: ast.Module):
        self.random_modules: Set[str] = set()
        self.numpy_modules: Set[str] = set()
        self.time_modules: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        # name -> banned random.* function imported directly via from-import
        self.from_random: Dict[str, str] = {}
        self.from_time: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_modules.add(local)
                    elif alias.name in ("numpy", "numpy.random"):
                        self.numpy_modules.add(local)
                    elif alias.name == "time":
                        self.time_modules.add(local)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(local)
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    local = alias.asname or alias.name
                    if node.module == "random" and alias.name not in _RANDOM_ALLOWED:
                        self.from_random[local] = alias.name
                    elif node.module == "time" and alias.name in _TIME_BANNED:
                        self.from_time[local] = alias.name
                    elif node.module == "datetime" and alias.name in ("datetime", "date"):
                        self.datetime_classes.add(local)
                    elif node.module == "numpy" and alias.name == "random":
                        self.numpy_modules.add(f"__numpy_random__:{local}")


def _check_call(node: ast.Call, imports: _ImportMap, relpath: str) -> Iterator[Finding]:
    """Findings for one call expression (the rule's per-node core)."""
    name = dotted_name(node.func)
    if name is None:
        return
    parts = name.split(".")
    head, tail = parts[0], parts[-1]

    def finding(symbol: str, message: str, hint_key: str) -> Finding:
        return Finding(
            rule=RULE_ID,
            path=relpath,
            line=node.lineno,
            column=node.col_offset,
            symbol=symbol,
            message=message,
            hint=_HINTS[hint_key],
        )

    # stdlib random: module-level API shares one hidden global stream.
    if head in imports.random_modules and len(parts) == 2 and tail not in _RANDOM_ALLOWED:
        yield finding(
            f"random.{tail}",
            f"module-level random.{tail}() draws from the unseeded global stream",
            "random",
        )
        return
    if head in imports.from_random and len(parts) == 1:
        original = imports.from_random[head]
        yield finding(
            f"random.{original}",
            f"module-level random.{original}() draws from the unseeded global stream",
            "random",
        )
        return

    # numpy legacy global API: np.random.<fn>() mutates hidden global state.
    if (
        head in imports.numpy_modules
        and len(parts) == 3
        and parts[1] == "random"
        and tail not in _NP_RANDOM_ALLOWED
    ):
        yield finding(
            f"np.random.{tail}",
            f"legacy global-state np.random.{tail}() is not replayable",
            "np.random",
        )
        return
    if (
        f"__numpy_random__:{head}" in imports.numpy_modules
        and len(parts) == 2
        and tail not in _NP_RANDOM_ALLOWED
    ):
        yield finding(
            f"np.random.{tail}",
            f"legacy global-state np.random.{tail}() is not replayable",
            "np.random",
        )
        return

    # wall-clock reads.
    if head in imports.time_modules and len(parts) == 2 and tail in _TIME_BANNED:
        yield finding(
            f"time.{tail}",
            f"time.{tail}() reads the wall clock inside a parity-scoped module",
            "time",
        )
        return
    if head in imports.from_time and len(parts) == 1:
        original = imports.from_time[head]
        yield finding(
            f"time.{original}",
            f"time.{original}() reads the wall clock inside a parity-scoped module",
            "time",
        )
        return
    if tail in _DATETIME_BANNED:
        # datetime.datetime.now() / datetime.now() / date.today() forms.
        if (
            (len(parts) == 3 and head in imports.datetime_modules and parts[1] in ("datetime", "date"))
            or (len(parts) == 2 and head in imports.datetime_classes)
        ):
            yield finding(
                f"datetime.{tail}",
                f"{name}() reads the wall clock inside a parity-scoped module",
                "datetime",
            )


@register_rule(
    RULE_ID,
    description=(
        "no unseeded RNG or wall-clock reads in the modules backing parity "
        "oracles (core/, video/, workloads/, adaptation/)"
    ),
    scope="src/repro/{core,video,workloads,adaptation}/**",
)
def check_determinism(project: Project) -> Iterator[Finding]:
    """Flag ambient-randomness and wall-clock calls in parity-scoped modules."""
    for module in project.modules:
        if not module.in_scope(PARITY_SCOPES):
            continue
        imports = _ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from _check_call(node, imports, module.relpath)
