"""Process-boundary safety: what crosses into a worker must survive pickling.

:class:`~repro.core.offline.ProcessExecutor` and the service's shard workers
receive work through ``pickle``.  A lambda, a function defined inside another
function, a generator, an open file or a lock all fail (or worse, behave
differently) at that boundary — and the failure only shows up on the
multi-worker path that CI's smoke jobs may not exercise at the offending call
site.  This rule flags the hand-off statically:

* ``<executor>.map(fn, ...)`` / ``<pool>.submit(fn, ...)`` where the receiver
  is executor-shaped (named ``*executor*``/``*pool*`` or assigned from
  ``ProcessExecutor`` / ``ProcessPoolExecutor`` / ``resolve_executor``):
  ``fn`` must be a module-level or imported callable — lambdas, nested
  functions and bound ``self.<method>`` callables are flagged; generator
  expressions and names bound to ``Lock()``/``open()`` in the argument list
  are flagged too;
* ``Process(target=...)`` (any ``multiprocessing`` context): the target must
  be module-level or imported; generator expressions and inline ``open()``
  calls in ``args=`` are flagged.  Passing ``multiprocessing`` primitives
  (locks, queues, shared arrays) to a ``Process`` stays legal — they are
  designed to cross via inheritance — while the same lock in a *pool* call
  is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.engine import Finding, register_rule
from repro.analysis.project import Project, dotted_name

RULE_ID = "process-boundary"

_EXECUTOR_FACTORIES = {"ProcessExecutor", "ProcessPoolExecutor", "resolve_executor", "Pool"}
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore"}


def _module_level_callables(tree: ast.Module) -> Set[str]:
    """Names safely importable from the module's top level (incl. imports)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            names.update(alias.asname or alias.name.split(".")[0] for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.asname or alias.name for alias in node.names)
    return names


def _executor_receiver(node: ast.expr, executor_locals: Set[str]) -> bool:
    """Whether a ``.map``/``.submit`` receiver looks process-pool-shaped."""
    name = dotted_name(node)
    if name is None:
        return False
    tail = name.split(".")[-1].lower()
    if name.split(".")[-1] in executor_locals or name in executor_locals:
        return True
    return tail.endswith("executor") or tail in ("pool", "_pool")


class _FunctionScope:
    """Per-function bookkeeping: nested defs, local lambdas, local locks."""

    def __init__(self, fn: ast.AST, module_names: Set[str]):
        self.module_names = module_names
        self.nested_defs: Set[str] = set()
        self.lambda_locals: Set[str] = set()
        self.lock_locals: Set[str] = set()
        self.executor_locals: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
                self.nested_defs.add(node.name)
            elif isinstance(node, ast.Assign):
                tail = ""
                if isinstance(node.value, ast.Call):
                    callee = dotted_name(node.value.func)
                    tail = callee.split(".")[-1] if callee else ""
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if isinstance(node.value, ast.Lambda):
                        self.lambda_locals.add(target.id)
                    elif tail in _LOCK_FACTORIES:
                        self.lock_locals.add(target.id)
                    elif tail in _EXECUTOR_FACTORIES:
                        self.executor_locals.add(target.id)

    def describe_callable(self, fn: ast.expr) -> Optional[str]:
        """Why ``fn`` cannot cross the process boundary (``None`` when fine)."""
        if isinstance(fn, ast.Lambda):
            return "a lambda cannot be pickled to a worker process"
        if isinstance(fn, ast.Name):
            if fn.id in self.lambda_locals:
                return f"'{fn.id}' is bound to a lambda, which cannot be pickled"
            if fn.id in self.nested_defs:
                return (
                    f"nested function '{fn.id}' closes over the enclosing frame "
                    "and cannot be pickled; move it to module level"
                )
            return None
        name = dotted_name(fn)
        if name is not None and name.startswith("self."):
            return (
                f"bound method '{name}' drags its whole instance across the "
                "process boundary; use a module-level function taking explicit "
                "arguments"
            )
        return None

    def describe_argument(self, arg: ast.expr) -> Optional[str]:
        """Why a payload argument cannot cross (``None`` when fine)."""
        if isinstance(arg, ast.GeneratorExp):
            return "a generator expression cannot be pickled to a worker"
        if isinstance(arg, ast.Call):
            callee = dotted_name(arg.func)
            if callee == "open":
                return "an open file handle cannot cross the process boundary"
        if isinstance(arg, ast.Name) and arg.id in self.lock_locals:
            return (
                f"'{arg.id}' holds a lock; locks cannot be pickled into a "
                "process pool (hand workers a multiprocessing primitive via "
                "Process args instead)"
            )
        return None


def _symbol_for(fn: ast.expr) -> str:
    if isinstance(fn, ast.Lambda):
        return "lambda"
    return dotted_name(fn) or type(fn).__name__


def _check_function(
    fn: ast.AST,
    module_names: Set[str],
    relpath: str,
    enclosing: str,
) -> Iterator[Finding]:
    """Findings for every pool/Process hand-off inside one function."""
    scope = _FunctionScope(fn, module_names)

    def finding(node: ast.AST, symbol: str, message: str) -> Finding:
        return Finding(
            rule=RULE_ID,
            path=relpath,
            line=node.lineno,
            column=node.col_offset,
            symbol=f"{enclosing}:{symbol}",
            message=message,
        )

    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # pool hand-offs: executor.map(fn, items) / pool.submit(fn, ...)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("map", "submit")
            and _executor_receiver(func.value, scope.executor_locals)
            and node.args
        ):
            work_fn = node.args[0]
            problem = scope.describe_callable(work_fn)
            if problem is not None:
                yield finding(work_fn, _symbol_for(work_fn), problem)
            for arg in node.args[1:]:
                problem = scope.describe_argument(arg)
                if problem is not None:
                    yield finding(arg, _symbol_for(arg), problem)
        # worker spawn: Process(target=..., args=(...))
        callee = dotted_name(func)
        if callee and callee.split(".")[-1] == "Process":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    problem = scope.describe_callable(keyword.value)
                    if problem is not None:
                        yield finding(keyword.value, _symbol_for(keyword.value), problem)
                elif keyword.arg == "args":
                    elements = (
                        keyword.value.elts
                        if isinstance(keyword.value, (ast.Tuple, ast.List))
                        else [keyword.value]
                    )
                    for element in elements:
                        if isinstance(element, ast.GeneratorExp):
                            yield finding(
                                element,
                                "GeneratorExp",
                                "a generator expression cannot be pickled to a worker",
                            )
                        elif (
                            isinstance(element, ast.Call)
                            and dotted_name(element.func) == "open"
                        ):
                            yield finding(
                                element,
                                "open",
                                "an open file handle cannot cross the process boundary",
                            )


@register_rule(
    RULE_ID,
    description=(
        "callables and payloads handed to ProcessExecutor/process pools/"
        "service workers must be picklable (no lambdas, nested functions, "
        "bound methods, generators, open files or locks)"
    ),
    hint="lift the work unit to a module-level function with explicit, picklable arguments",
)
def check_process_boundary(project: Project) -> Iterator[Finding]:
    """Flag unpicklable hand-offs at every pool/Process call site.

    Only top-level functions and methods of top-level classes are walked as
    scopes; functions nested inside them are covered by the enclosing walk
    (visiting them separately would double-report their call sites).
    """
    for module in project.modules:
        module_names = _module_level_callables(module.tree)
        scopes: List[ast.AST] = []
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
            elif isinstance(node, ast.ClassDef):
                scopes.extend(
                    child
                    for child in node.body
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
        for scope in scopes:
            yield from _check_function(scope, module_names, module.relpath, scope.name)
