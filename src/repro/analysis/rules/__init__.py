"""Built-in repro-lint rules.

Importing this package registers every built-in rule with the engine's
registry (exactly how importing :mod:`repro.registry` registers the built-in
policies).  A new rule module only needs to be imported here to become part
of ``python -m repro.analysis``.
"""

from repro.analysis.rules import (  # noqa: F401  (imported for registration side effects)
    cache_keys,
    determinism,
    locks,
    process_boundary,
    registry_hygiene,
)

__all__ = [
    "cache_keys",
    "determinism",
    "locks",
    "process_boundary",
    "registry_hygiene",
]
