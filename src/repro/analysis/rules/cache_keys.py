"""Cache-key completeness: a cached stage may only read what its key names.

The :class:`~repro.core.offline.StageCache` is content-addressed: a stage's
artifact is reused whenever its digest — workload identity + the stage's own
key material + upstream digests — matches.  That contract inverts into the
invariant this rule enforces: **every fit parameter a cacheable stage body
reads must appear in that stage's key construction**, otherwise changing the
parameter silently serves the stale artifact (the category-sweep reuse of
PR 3 going wrong would look exactly like this).

Mechanically, for each module that declares ``StageSpec(name=..., cacheable=
True)`` literals and a class defining ``_stage_key_params``:

* the *reads* of stage ``s`` are the ``self.params.<p>`` and constructor-bound
  ``self.<attr>`` loads reachable from ``_run_<s>`` (recursively expanded
  through same-class helper methods and properties, so a parameter read via
  ``self.label_window_end`` is still seen);
* the *key material* of ``s`` is everything read the same way inside the
  ``if spec.name == "s":`` branch of ``_stage_key_params``, plus string
  literals in that branch (``key["label_window_end_days"] = ...``), plus the
  globally keyed reads of ``_base_payload`` / ``_source_payload``;
* every read not in the key material is a finding ``s:<attr>``.

Deliberate omissions (e.g. ``n_categories`` — clustering re-runs on load)
belong in the committed baseline with their justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, register_rule
from repro.analysis.project import Project, dotted_name

RULE_ID = "cache-key"


def _cacheable_stages(tree: ast.Module) -> Set[str]:
    """Names of ``StageSpec(..., cacheable=True)`` literals in the module."""
    stages: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if not callee or callee.split(".")[-1] != "StageSpec":
            continue
        name: Optional[str] = None
        cacheable = False
        for keyword in node.keywords:
            if keyword.arg == "name" and isinstance(keyword.value, ast.Constant):
                name = keyword.value.value
            elif keyword.arg == "cacheable" and isinstance(keyword.value, ast.Constant):
                cacheable = bool(keyword.value.value)
        if name and cacheable:
            stages.add(name)
    return stages


def _config_attrs(cls: ast.ClassDef) -> Set[str]:
    """Constructor parameters bound 1:1 as attributes (``self.x = x``)."""
    attrs: Set[str] = set()
    for statement in cls.body:
        if isinstance(statement, ast.FunctionDef) and statement.name == "__init__":
            for node in ast.walk(statement):
                if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Name):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
    return attrs


class _ReadCollector:
    """Collects parameter/config reads reachable from a method body.

    ``self.params.<p>`` (or through a ``params = self.params`` local alias)
    and ``self.<config_attr>`` loads are recorded with their first source
    location; ``self.<helper>`` references recurse into same-class methods
    and properties (cycle-guarded).
    """

    def __init__(self, methods: Dict[str, ast.FunctionDef], config_attrs: Set[str]):
        self.methods = methods
        self.config_attrs = config_attrs
        self.reads: Dict[str, Tuple[int, int]] = {}
        self.strings: Set[str] = set()
        self._visited: Set[str] = set()

    def collect(
        self, body: List[ast.stmt], alias_scope: Optional[List[ast.stmt]] = None
    ) -> "_ReadCollector":
        """Walk ``body`` (a statement list) and record every reachable read.

        ``alias_scope`` widens where ``params = self.params`` aliases are
        discovered (a stage branch inherits the alias declared at the top of
        ``_stage_key_params``, outside the branch itself).
        """
        params_aliases = {"__never__"}
        for statement in list(body) + list(alias_scope or []):
            for node in ast.walk(statement):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "self"
                    and node.value.attr == "params"
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            params_aliases.add(target.id)
        for statement in body:
            for node in ast.walk(statement):
                self._visit(node, params_aliases)
        return self

    def _record(self, name: str, node: ast.AST) -> None:
        if name not in self.reads:
            self.reads[name] = (node.lineno, node.col_offset)

    def _visit(self, node: ast.AST, params_aliases: Set[str]) -> None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            self.strings.add(node.value)
            return
        if not isinstance(node, ast.Attribute):
            return
        value = node.value
        # self.params.<p> and alias.<p>
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and value.attr == "params"
        ):
            self._record(node.attr, node)
            return
        if isinstance(value, ast.Name) and value.id in params_aliases:
            self._record(node.attr, node)
            return
        if isinstance(value, ast.Name) and value.id == "self":
            if node.attr in self.config_attrs and node.attr != "params":
                self._record(node.attr, node)
            helper = self.methods.get(node.attr)
            if helper is not None and node.attr not in self._visited:
                self._visited.add(node.attr)
                self.collect(helper.body)


def _stage_branches(key_method: ast.FunctionDef, stages: Set[str]) -> Dict[str, List[ast.stmt]]:
    """The ``if spec.name == <stage>:`` branch body for each cacheable stage."""
    branches: Dict[str, List[ast.stmt]] = {}
    for node in ast.walk(key_method):
        if not isinstance(node, ast.If):
            continue
        for test_node in ast.walk(node.test):
            if (
                isinstance(test_node, ast.Constant)
                and isinstance(test_node.value, str)
                and test_node.value in stages
            ):
                branches.setdefault(test_node.value, node.body)
    return branches


@register_rule(
    RULE_ID,
    description=(
        "every fit parameter read inside a StageCache-cached stage body must "
        "appear in that stage's cache-key construction"
    ),
    hint=(
        "add the parameter to the stage's branch in _stage_key_params, or "
        "baseline it with a justification for why the artifact is parameter-"
        "independent"
    ),
)
def check_cache_keys(project: Project) -> Iterator[Finding]:
    """Line cacheable stage bodies up against their key construction."""
    for module in project.modules:
        stages = _cacheable_stages(module.tree)
        if not stages:
            continue
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {
                statement.name: statement
                for statement in cls.body
                if isinstance(statement, ast.FunctionDef)
            }
            key_method = methods.get("_stage_key_params")
            if key_method is None:
                continue
            config_attrs = _config_attrs(cls)
            branches = _stage_branches(key_method, stages)
            globally_keyed: Set[str] = set()
            for name in ("_base_payload", "_source_payload"):
                helper = methods.get(name)
                if helper is not None:
                    collector = _ReadCollector(methods, config_attrs).collect(helper.body)
                    globally_keyed |= set(collector.reads)
            for stage in sorted(stages):
                run_method = methods.get(f"_run_{stage}")
                if run_method is None:
                    continue
                reads = _ReadCollector(methods, config_attrs).collect(run_method.body)
                branch = branches.get(stage)
                covered: Set[str] = set(globally_keyed)
                if branch is not None:
                    key_reads = _ReadCollector(methods, config_attrs).collect(
                        branch, alias_scope=key_method.body
                    )
                    covered |= set(key_reads.reads)
                    covered |= key_reads.strings
                for attr in sorted(reads.reads):
                    if attr in covered:
                        continue
                    line, column = reads.reads[attr]
                    yield Finding(
                        rule=RULE_ID,
                        path=module.relpath,
                        line=line,
                        column=column,
                        symbol=f"{stage}:{attr}",
                        message=(
                            f"cached stage {stage!r} reads {attr!r} but its "
                            "cache key does not include it — changing the "
                            "parameter would silently reuse a stale artifact"
                        ),
                    )
