"""Registry hygiene: registered extension points are documented and tested.

The repo's extension surface is its registries — ``@register_policy``,
``@register_figure``, ``@register_planner`` and ``@register_scheduler``.  A
registered name is reachable from every CLI and sweep by string, so an
undocumented or untested entry is a public API with no contract: nothing
states what it does and nothing fails when it breaks.  For every registration
in ``src/repro/**`` this rule requires:

* the decorated function/class carries a docstring (D1 exempts private
  ``_factory`` helpers; the registry does not — the *name* is public even
  when the factory is not); and
* the registered name appears **quoted** in at least one file under
  ``tests/`` (substring matches like ``fifo`` inside ``fifofo`` do not
  count), so deregistering or renaming the entry fails a test.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.engine import Finding, register_rule
from repro.analysis.project import Project, dotted_name

RULE_ID = "registry-hygiene"

_REGISTRARS = {
    "register_policy",
    "register_figure",
    "register_planner",
    "register_scheduler",
}


def _registrations(
    tree: ast.Module,
) -> Iterator[Tuple[str, str, ast.AST]]:
    """``(registrar, registered_name, decorated_node)`` for every registration."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            callee = dotted_name(decorator.func)
            if not callee:
                continue
            registrar = callee.split(".")[-1]
            if registrar not in _REGISTRARS:
                continue
            name = _registered_name(decorator)
            if name is not None:
                yield registrar, name, node


def _registered_name(decorator: ast.Call) -> Optional[str]:
    """First positional string argument of the registration call."""
    if decorator.args and isinstance(decorator.args[0], ast.Constant):
        value = decorator.args[0].value
        if isinstance(value, str):
            return value
    return None


def _quoted_in_tests(name: str, project: Project) -> bool:
    """Whether the name appears as a quoted string in any test file."""
    needles = (f'"{name}"', f"'{name}'")
    return any(
        needle in text for text in project.test_texts.values() for needle in needles
    )


@register_rule(
    RULE_ID,
    description=(
        "every @register_policy/@register_figure/@register_planner/"
        "@register_scheduler target has a docstring and its name is "
        "referenced by at least one test"
    ),
)
def check_registry_hygiene(project: Project) -> Iterator[Finding]:
    """Audit every registration for a docstring and a quoted test reference."""
    has_tests = bool(project.test_texts)
    for module in project.modules:
        for registrar, name, node in _registrations(module.tree):
            symbol = f"{registrar}:{name}"
            if ast.get_docstring(node) is None:
                yield Finding(
                    rule=RULE_ID,
                    path=module.relpath,
                    line=node.lineno,
                    column=node.col_offset,
                    symbol=f"{symbol}:docstring",
                    message=(
                        f"{registrar}({name!r}) target {node.name!r} has no "
                        "docstring — registered names are public API"
                    ),
                    hint="add a docstring stating what the registered entry does",
                )
            if has_tests and not _quoted_in_tests(name, project):
                yield Finding(
                    rule=RULE_ID,
                    path=module.relpath,
                    line=node.lineno,
                    column=node.col_offset,
                    symbol=f"{symbol}:untested",
                    message=(
                        f"registered name {name!r} is not referenced (quoted) "
                        "by any file under tests/ — deregistering it would "
                        "break no test"
                    ),
                    hint="reference the name in a test (e.g. an expected-registry-contents assertion)",
                )
