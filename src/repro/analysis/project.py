"""Parsed view of the repository that every rule checks against.

A :class:`Project` is the single input handed to every registered rule: the
parsed ASTs of ``src/repro/**`` plus the raw text of ``tests/**`` (rules that
enforce "referenced by a test" search the latter).  Projects are built either
from the real tree (:meth:`Project.from_root`) or from in-memory sources
(:meth:`Project.from_sources`) so rule tests can feed small fixture snippets
through exactly the code path the CLI runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Directories under ``src/repro`` whose outputs back a parity oracle; the
#: determinism rule only patrols these (service timestamps et al. are
#: legitimately wall-clock).
PARITY_SCOPES: Tuple[str, ...] = ("core/", "video/", "workloads/", "adaptation/")


@dataclass(frozen=True)
class SourceModule:
    """One parsed python module of the analyzed tree.

    Attributes:
        relpath: posix path relative to the repository root
            (e.g. ``src/repro/core/offline.py``).
        source: the module's source text.
        tree: the parsed :class:`ast.Module`.
    """

    relpath: str
    source: str
    tree: ast.Module

    @property
    def package_relpath(self) -> str:
        """Path relative to the ``repro`` package root (e.g. ``core/offline.py``)."""
        marker = "repro/"
        index = self.relpath.find(marker)
        if index < 0:
            return self.relpath
        return self.relpath[index + len(marker):]

    def in_scope(self, prefixes: Tuple[str, ...]) -> bool:
        """Whether the module lives under one of the package-relative prefixes."""
        return self.package_relpath.startswith(prefixes)


@dataclass
class Project:
    """Everything a rule may inspect: parsed sources plus test text.

    Attributes:
        root: repository root the relative paths are anchored at.
        modules: parsed modules of ``src/repro`` in sorted path order.
        test_texts: ``relpath -> raw text`` of every test file.
        parse_errors: files that failed to parse (reported by the engine as
            findings of the built-in ``parse-error`` pseudo-rule).
    """

    root: Path
    modules: List[SourceModule] = field(default_factory=list)
    test_texts: Dict[str, str] = field(default_factory=dict)
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    @classmethod
    def from_root(cls, root: Path) -> "Project":
        """Parse ``src/repro/**`` and read ``tests/**`` under ``root``."""
        root = Path(root).resolve()
        package_dir = root / "src" / "repro"
        if not package_dir.is_dir():
            raise ConfigurationError(
                f"no src/repro package under {root}; pass --root explicitly"
            )
        project = cls(root=root)
        for path in sorted(package_dir.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            relpath = path.relative_to(root).as_posix()
            source = path.read_text()
            try:
                tree = ast.parse(source, filename=relpath)
            except SyntaxError as error:
                project.parse_errors.append((relpath, str(error)))
                continue
            project.modules.append(SourceModule(relpath, source, tree))
        tests_dir = root / "tests"
        if tests_dir.is_dir():
            for path in sorted(tests_dir.rglob("*.py")):
                if "__pycache__" in path.parts:
                    continue
                relpath = path.relative_to(root).as_posix()
                project.test_texts[relpath] = path.read_text()
        return project

    @classmethod
    def from_sources(
        cls,
        sources: Dict[str, str],
        test_texts: Optional[Dict[str, str]] = None,
        root: Optional[Path] = None,
    ) -> "Project":
        """A project over in-memory ``relpath -> source`` fixtures (for tests)."""
        project = cls(root=Path(root) if root is not None else Path("."))
        for relpath in sorted(sources):
            source = sources[relpath]
            try:
                tree = ast.parse(source, filename=relpath)
            except SyntaxError as error:
                project.parse_errors.append((relpath, str(error)))
                continue
            project.modules.append(SourceModule(relpath, source, tree))
        project.test_texts = dict(test_texts or {})
        return project


def dotted_name(node: ast.AST) -> Optional[str]:
    """The dotted text of a ``Name``/``Attribute`` chain, or ``None``.

    ``ast.Attribute(value=Name('np'), attr='random')`` becomes ``"np.random"``;
    chains rooted in calls or subscripts (not plain names) yield ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
