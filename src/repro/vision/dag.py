"""Task graphs: the DAG of UDF invocations produced by a knob configuration.

Each knob configuration corresponds to a directed acyclic graph of tasks
(Section 2, Appendix A.2).  A task bundles the invocations of one UDF over one
video segment (e.g. "run the detector on every 5th frame of this segment") and
carries the profiled resource costs.  The placement of a task graph assigns
every task to the on-premise cluster or to the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Set

from repro.errors import ConfigurationError, PlacementError
from repro.vision.udf import OperatorCost


@dataclass(frozen=True)
class Task:
    """One node of a task graph.

    Attributes:
        name: unique task name within its graph.
        operator: name of the UDF the task runs.
        cost: aggregate resource cost of the task (all its invocations).
        invocations: number of underlying operator invocations folded into
            the task (useful for reporting and for fine-grained replay).
    """

    name: str
    operator: str
    cost: OperatorCost
    invocations: int = 1

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("task name must be non-empty")
        if self.invocations < 0:
            raise ConfigurationError("invocations must be non-negative")


class TaskGraph:
    """A DAG of :class:`Task` nodes with explicit dependencies.

    The graph is built incrementally::

        graph = TaskGraph()
        decode = graph.add_task(Task("decode", "decoder", cost_decode))
        detect = graph.add_task(Task("detect", "yolo", cost_detect), depends_on=["decode"])
    """

    def __init__(self):
        self._tasks: Dict[str, Task] = {}
        self._parents: Dict[str, Set[str]] = {}
        self._children: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_task(self, task: Task, depends_on: Iterable[str] = ()) -> Task:
        """Add a task, optionally depending on previously added tasks."""
        if task.name in self._tasks:
            raise ConfigurationError(f"task {task.name!r} added twice")
        dependencies = list(depends_on)
        for parent in dependencies:
            if parent not in self._tasks:
                raise ConfigurationError(
                    f"task {task.name!r} depends on unknown task {parent!r}"
                )
        self._tasks[task.name] = task
        self._parents[task.name] = set(dependencies)
        self._children[task.name] = set()
        for parent in dependencies:
            self._children[parent].add(task.name)
        return task

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    @property
    def task_names(self) -> List[str]:
        return list(self._tasks)

    def task(self, name: str) -> Task:
        if name not in self._tasks:
            raise ConfigurationError(f"unknown task {name!r}")
        return self._tasks[name]

    def parents(self, name: str) -> Set[str]:
        return set(self._parents[self.task(name).name])

    def children(self, name: str) -> Set[str]:
        return set(self._children[self.task(name).name])

    def roots(self) -> List[str]:
        """Tasks with no dependencies."""
        return [name for name, parents in self._parents.items() if not parents]

    def topological_order(self) -> List[str]:
        """Task names in a valid execution order; raises on cycles."""
        in_degree = {name: len(parents) for name, parents in self._parents.items()}
        ready = [name for name, degree in in_degree.items() if degree == 0]
        order: List[str] = []
        while ready:
            # Stable ordering: insertion order among ready tasks.
            ready.sort(key=lambda name: list(self._tasks).index(name))
            current = ready.pop(0)
            order.append(current)
            for child in self._children[current]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._tasks):
            raise ConfigurationError("task graph contains a cycle")
        return order

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def total_on_prem_seconds(self) -> float:
        """Total single-core work of the graph when run fully on premises."""
        return sum(task.cost.on_prem_seconds for task in self._tasks.values())

    def total_cloud_dollars(self, placement: Mapping[str, str]) -> float:
        """Cloud spend of the graph under a placement."""
        self.validate_placement(placement)
        return sum(
            self._tasks[name].cost.cloud_dollars
            for name, location in placement.items()
            if location == "cloud"
        )

    def total_upload_bytes(self, placement: Mapping[str, str]) -> int:
        """Bytes uploaded to the cloud under a placement."""
        self.validate_placement(placement)
        return sum(
            self._tasks[name].cost.upload_bytes
            for name, location in placement.items()
            if location == "cloud"
        )

    def critical_path_seconds(self) -> float:
        """Length of the longest dependency chain when run fully on premises."""
        finish: Dict[str, float] = {}
        for name in self.topological_order():
            parents = self._parents[name]
            start = max((finish[parent] for parent in parents), default=0.0)
            finish[name] = start + self._tasks[name].cost.on_prem_seconds
        return max(finish.values(), default=0.0)

    # ------------------------------------------------------------------ #
    # Placements
    # ------------------------------------------------------------------ #
    def all_on_prem_placement(self) -> Dict[str, str]:
        return {name: "on_prem" for name in self._tasks}

    def all_cloud_placement(self) -> Dict[str, str]:
        return {name: "cloud" for name in self._tasks}

    def validate_placement(self, placement: Mapping[str, str]) -> None:
        """Check that a placement covers every task with a valid location."""
        missing = [name for name in self._tasks if name not in placement]
        if missing:
            raise PlacementError(f"placement misses tasks: {missing}")
        invalid = [
            name for name, location in placement.items() if location not in ("on_prem", "cloud")
        ]
        if invalid:
            raise PlacementError(f"placement has invalid locations for: {invalid}")
        unknown = [name for name in placement if name not in self._tasks]
        if unknown:
            raise PlacementError(f"placement references unknown tasks: {unknown}")

    def enumerate_placements(self, max_tasks_for_full_enumeration: int = 12) -> List[Dict[str, str]]:
        """All 2^n placements for small graphs, a heuristic subset otherwise.

        For graphs with more tasks than ``max_tasks_for_full_enumeration`` the
        method returns the all-on-prem placement, the all-cloud placement, and
        every placement that offloads a single "heavy suffix" of the
        topological order (heaviest tasks first), which is the family of
        placements the paper's pipelines actually benefit from.
        """
        names = self.topological_order()
        if len(names) <= max_tasks_for_full_enumeration:
            placements: List[Dict[str, str]] = []
            for mask in range(2 ** len(names)):
                placement = {
                    name: ("cloud" if (mask >> index) & 1 else "on_prem")
                    for index, name in enumerate(names)
                }
                placements.append(placement)
            return placements
        placements = [self.all_on_prem_placement(), self.all_cloud_placement()]
        by_weight = sorted(
            names, key=lambda name: self._tasks[name].cost.on_prem_seconds, reverse=True
        )
        for count in range(1, len(names)):
            offloaded = set(by_weight[:count])
            placements.append(
                {name: ("cloud" if name in offloaded else "on_prem") for name in names}
            )
        return placements
