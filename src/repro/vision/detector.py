"""Simulated object detector (YOLO-like).

The detector's cost grows with the number of tiles (each tile is a separate
inference, Section J "tiling for object detection") and with the model size.
Its recall degrades with occlusion, poor lighting, and small objects; tiling
recovers small objects, larger models recover occlusions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.video.codec import H264SizeModel
from repro.video.content import ContentState
from repro.video.frame import Frame, SyntheticObject
from repro.vision.model_zoo import get_model_variant
from repro.vision.udf import OperatorCost, VisionOperator, clip01

#: AWS-Lambda-like pricing used for per-invocation cloud cost: the paper
#: provisions 3 GB functions; at ~$0.0000167/GB-s this is ~$0.00005 per second.
_CLOUD_DOLLARS_PER_SECOND = 3.0 * 0.0000166667
_CLOUD_ROUND_TRIP_BASE = 0.12  # network round trip + invocation overhead (s)


@dataclass
class DetectionResult:
    """Outcome of running the detector on one frame or one segment.

    Attributes:
        detections: number of objects reported by the detector.
        true_positives: detections matching a ground-truth object.
        recall: fraction of ground-truth objects that were detected.
        mean_confidence: average reported confidence of the detections — the
            observable quality signal the knob switcher relies on.
    """

    detections: int
    true_positives: int
    recall: float
    mean_confidence: float


class SimulatedObjectDetector(VisionOperator):
    """A YOLO-like detector with tiling and model-size knobs.

    Args:
        family: model family in the :mod:`model_zoo` (default ``"yolo"``).
        size_model: payload-size model for cloud offloading.
        seed: RNG seed for the per-frame sampling noise.
    """

    def __init__(
        self,
        family: str = "yolo",
        size_model: Optional[H264SizeModel] = None,
        seed: int = 0,
        noise_level: float = 0.02,
    ):
        super().__init__(name=f"{family}-detector", noise_level=noise_level)
        self.family = family
        self.size_model = size_model or H264SizeModel()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def invocation_cost(
        self,
        model_size: str = "medium",
        tiles: int = 1,
        width: int = 1280,
        height: int = 720,
    ) -> OperatorCost:
        """Cost of detecting objects in one frame under the given knobs."""
        if tiles < 1:
            raise ConfigurationError("tiles must be at least 1")
        variant = get_model_variant(self.family, model_size)
        resolution_scale = (width * height) / (1280 * 720)
        on_prem = variant.seconds_per_inference * tiles * max(resolution_scale, 0.1)
        cloud_compute = on_prem / variant.cloud_speedup
        payload = self.size_model.cloud_frame_payload(width, height, tiles=tiles)
        cloud_round_trip = _CLOUD_ROUND_TRIP_BASE + cloud_compute
        cloud_dollars = cloud_compute * _CLOUD_DOLLARS_PER_SECOND
        return OperatorCost(
            on_prem_seconds=on_prem,
            cloud_seconds=cloud_round_trip,
            cloud_dollars=cloud_dollars,
            upload_bytes=payload.encoded_bytes,
            download_bytes=4_096,
        )

    # ------------------------------------------------------------------ #
    # Quality model
    # ------------------------------------------------------------------ #
    def detection_recall(
        self,
        content: ContentState,
        model_size: str = "medium",
        tiles: int = 1,
        sampling_fraction: float = 1.0,
    ) -> float:
        """Expected recall on content of the given difficulty.

        The recall model encodes the paper's qualitative claims:

        * occlusion is the dominant difficulty driver (Figure 3 discussion);
        * poor lighting hurts, especially small models;
        * tiling recovers small objects (which are more common when density
          is high and the scene is far away);
        * sampling fewer frames misses short-lived objects, proportionally to
          the motion level.
        """
        if not 0.0 < sampling_fraction <= 1.0:
            raise ConfigurationError("sampling_fraction must be in (0, 1]")
        variant = get_model_variant(self.family, model_size)
        difficulty = clip01(
            0.65 * content.occlusion
            + 0.25 * (1.0 - content.lighting)
            + 0.10 * content.object_density
        )
        base = variant.accuracy(difficulty)
        # Small objects: without tiling a fraction of the objects is too small
        # to detect; that fraction grows with scene density.
        small_fraction = 0.25 * content.object_density
        tiling_gain = small_fraction * (1.0 - 1.0 / tiles) if tiles > 1 else 0.0
        tiling_loss = small_fraction if tiles == 1 else small_fraction / tiles
        # Temporal sampling: objects present for only part of the segment are
        # missed when few frames are sampled, proportional to motion.
        sampling_loss = (1.0 - sampling_fraction) * 0.35 * content.motion
        return clip01(base - tiling_loss + tiling_gain - sampling_loss)

    def detect_segment(
        self,
        content: ContentState,
        ground_truth_objects: int,
        model_size: str = "medium",
        tiles: int = 1,
        sampling_fraction: float = 1.0,
    ) -> DetectionResult:
        """Aggregate detection outcome over a segment."""
        recall = self.detection_recall(content, model_size, tiles, sampling_fraction)
        noisy_recall = clip01(recall + self._rng.normal(0.0, self.noise_level))
        true_positives = int(round(ground_truth_objects * noisy_recall))
        variant = get_model_variant(self.family, model_size)
        # YOLO has a low false-positive rate (Section 5.2), slightly worse in
        # the dark and for the small variant.
        false_positives = int(
            round(ground_truth_objects * 0.05 * (1.0 - variant.base_accuracy + 0.2)
                  * (1.5 - content.lighting))
        )
        detections = true_positives + false_positives
        confidence = clip01(
            0.35 + 0.6 * noisy_recall + self._rng.normal(0.0, self.noise_level / 2.0)
        )
        return DetectionResult(
            detections=detections,
            true_positives=true_positives,
            recall=noisy_recall,
            mean_confidence=confidence,
        )

    def detect_frame(
        self,
        frame: Frame,
        model_size: str = "medium",
        tiles: int = 1,
    ) -> List[SyntheticObject]:
        """Frame-level detection used by examples and unit tests.

        Returns the subset of the frame's ground-truth objects the detector
        finds under the given knob settings.
        """
        detected: List[SyntheticObject] = []
        variant = get_model_variant(self.family, model_size)
        for obj in frame.objects:
            difficulty = 0.0
            if obj.occluded:
                difficulty += 0.55
            difficulty += 0.3 * (1.0 - min(obj.size / 0.06, 1.0))  # small objects
            probability = variant.accuracy(clip01(difficulty))
            if obj.size < 0.04 and tiles == 1:
                probability *= 0.5
            if self._rng.uniform() < probability:
                detected.append(obj)
        return detected
