"""UDF base types shared by all simulated vision operators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OperatorCost:
    """Resource cost of a single operator invocation.

    Attributes:
        on_prem_seconds: single-core service time on the on-premise cluster.
        cloud_seconds: round-trip time when the invocation is offloaded to a
            cloud function (includes the cloud-side processing; the simulator
            adds queuing for bandwidth separately).
        cloud_dollars: monetary cost of one cloud invocation.
        upload_bytes: payload uploaded to the cloud (JPEG + Base64).
        download_bytes: payload downloaded from the cloud (detections, etc.).
    """

    on_prem_seconds: float
    cloud_seconds: float
    cloud_dollars: float
    upload_bytes: int
    download_bytes: int

    def __post_init__(self):
        if self.on_prem_seconds < 0 or self.cloud_seconds < 0:
            raise ConfigurationError("operator runtimes must be non-negative")
        if self.cloud_dollars < 0:
            raise ConfigurationError("cloud cost must be non-negative")
        if self.upload_bytes < 0 or self.download_bytes < 0:
            raise ConfigurationError("payload sizes must be non-negative")

    def scaled(self, factor: float) -> "OperatorCost":
        """Cost of ``factor`` back-to-back invocations folded into one task."""
        if factor < 0:
            raise ConfigurationError("scale factor must be non-negative")
        return OperatorCost(
            on_prem_seconds=self.on_prem_seconds * factor,
            cloud_seconds=self.cloud_seconds * factor,
            cloud_dollars=self.cloud_dollars * factor,
            upload_bytes=int(self.upload_bytes * factor),
            download_bytes=int(self.download_bytes * factor),
        )


@dataclass
class UdfOutput:
    """Generic result of running an operator over a segment.

    Attributes:
        operator: name of the operator that produced the output.
        entities: number of entities extracted (detections, tracks, labels).
        quality: the operator's own reported quality metric in [0, 1]
            (certainty, tracking success rate, ...) — this is what the user
            code returns to Skyscraper and what the knob switcher observes.
        true_quality: ground-truth quality in [0, 1]; only the evaluation
            harness may look at this, never the system itself.
        details: operator-specific extras (e.g. per-class counts).
    """

    operator: str
    entities: float
    quality: float
    true_quality: float
    details: Dict[str, float] = field(default_factory=dict)


class VisionOperator:
    """Base class for simulated CV operators.

    Subclasses implement :meth:`invocation_cost` (resource cost of one
    invocation under the given knob settings) and whatever domain-specific
    quality methods they need.  The base class stores the operator name and a
    deterministic noise scale so repeated profiling runs agree.
    """

    def __init__(self, name: str, noise_level: float = 0.02):
        if not name:
            raise ConfigurationError("operator name must be non-empty")
        if noise_level < 0:
            raise ConfigurationError("noise_level must be non-negative")
        self.name = name
        self.noise_level = noise_level

    def invocation_cost(self, **knobs) -> OperatorCost:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name!r}>"


def clip01(value: float) -> float:
    """Clip a quality value into [0, 1]."""
    return float(min(max(value, 0.0), 1.0))
