"""Simulated computer-vision operators (the workload UDFs).

The paper's workloads are built from YOLOv5, KCF trackers, TransMOT, face and
sentiment classifiers.  We cannot run those models offline, and Skyscraper's
behaviour does not depend on their absolute accuracy — it depends on the
*shape* of the knob/quality/cost trade-off: expensive configurations are
robust on difficult content, cheap configurations are fast but fail when
occlusion is high, lighting is poor, objects are small, or motion is fast.

Each simulated operator therefore exposes two things:

* a **cost model**: core-seconds per invocation on premises, cloud round-trip
  time, cloud dollars and payload bytes, parameterized by the knobs (tiling,
  model size, resolution), matching the magnitudes reported in the paper
  (e.g. YOLOv5 ≈ 86 ms per HD inference on a Xeon core, Appendix K.2);
* a **quality model**: detection recall / tracking success / classification
  accuracy as an explicit, documented function of the knobs and the segment's
  content difficulty.
"""

from repro.vision.udf import OperatorCost, UdfOutput, VisionOperator
from repro.vision.model_zoo import ModelVariant, MODEL_ZOO, get_model_variant
from repro.vision.detector import SimulatedObjectDetector, DetectionResult
from repro.vision.tracker import SimulatedTracker, SimulatedTransMOT, TrackingResult
from repro.vision.classifier import SimulatedClassifier, ClassificationResult
from repro.vision.homography import HomographyDistance
from repro.vision.embedding import SimulatedEmbedder
from repro.vision.dag import Task, TaskGraph

__all__ = [
    "OperatorCost",
    "UdfOutput",
    "VisionOperator",
    "ModelVariant",
    "MODEL_ZOO",
    "get_model_variant",
    "SimulatedObjectDetector",
    "DetectionResult",
    "SimulatedTracker",
    "SimulatedTransMOT",
    "TrackingResult",
    "SimulatedClassifier",
    "ClassificationResult",
    "HomographyDistance",
    "SimulatedEmbedder",
    "Task",
    "TaskGraph",
]
