"""Simulated feature embedders (VGG-like appearance features, audio features).

TransMOT consumes per-object appearance embeddings produced by an off-the-shelf
image model (Section J), and the MOSEI pipeline extracts face embeddings,
GloVe word vectors and acoustic features before the sentiment classifier runs.
The embedder is modelled as a fixed-cost-per-item operator producing a
deterministic low-dimensional vector; downstream operators only care about its
cost and payload size.
"""

from __future__ import annotations


import numpy as np

from repro.errors import ConfigurationError
from repro.vision.udf import OperatorCost, VisionOperator

_CLOUD_DOLLARS_PER_SECOND = 3.0 * 0.0000166667
_CLOUD_ROUND_TRIP_BASE = 0.12


class SimulatedEmbedder(VisionOperator):
    """Produces fixed-size feature vectors for detected objects or audio chunks.

    Args:
        name: operator name (e.g. ``"vgg-embedder"``, ``"audio-features"``).
        seconds_per_item: single-core seconds to embed one item.
        dimension: embedding dimensionality.
        cloud_speedup: relative speedup when running on a cloud worker.
    """

    def __init__(
        self,
        name: str = "vgg-embedder",
        seconds_per_item: float = 0.010,
        dimension: int = 128,
        cloud_speedup: float = 1.6,
        seed: int = 0,
    ):
        super().__init__(name=name, noise_level=0.0)
        if seconds_per_item <= 0:
            raise ConfigurationError("seconds_per_item must be positive")
        if dimension < 1:
            raise ConfigurationError("dimension must be positive")
        if cloud_speedup <= 0:
            raise ConfigurationError("cloud_speedup must be positive")
        self.seconds_per_item = seconds_per_item
        self.dimension = dimension
        self.cloud_speedup = cloud_speedup
        self._rng = np.random.default_rng(seed)

    def invocation_cost(self, items: int = 1) -> OperatorCost:
        if items < 0:
            raise ConfigurationError("items must be non-negative")
        on_prem = self.seconds_per_item * items
        cloud_compute = on_prem / self.cloud_speedup
        return OperatorCost(
            on_prem_seconds=on_prem,
            cloud_seconds=_CLOUD_ROUND_TRIP_BASE + cloud_compute,
            cloud_dollars=cloud_compute * _CLOUD_DOLLARS_PER_SECOND,
            upload_bytes=40_000 * max(items, 1),
            download_bytes=4 * self.dimension * max(items, 1),
        )

    def embed(self, item_id: int) -> np.ndarray:
        """Deterministic embedding of an item (keyed by its identifier)."""
        rng = np.random.default_rng((item_id * 1_000_003 + 17) & 0xFFFFFFFF)
        vector = rng.normal(0.0, 1.0, size=self.dimension)
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector

    def similarity(self, first_id: int, second_id: int) -> float:
        """Cosine similarity of two item embeddings."""
        return float(np.dot(self.embed(first_id), self.embed(second_id)))
