"""Cost/accuracy profiles of the simulated model variants.

Several knobs in the paper select a *model size* (small / medium / large for
TransMOT and for the sentiment classifier).  Larger models are slower but more
robust on difficult content.  This module centralizes those profiles so
workloads and tests agree on the numbers.

The per-inference runtimes are anchored on the figures reported in the paper:
YOLOv5 takes about 86 ms per HD frame on a Xeon core (Appendix K.2), and the
large TransMOT variant is several times more expensive than the small one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ModelVariant:
    """Profile of one model size.

    Attributes:
        name: variant name (``"small"``, ``"medium"``, ``"large"``).
        seconds_per_inference: single-core on-premise runtime per inference
            on an HD input.
        base_accuracy: accuracy on easy content (low occlusion, good light).
        robustness: how much of the accuracy survives on maximally difficult
            content; effective accuracy degrades linearly from
            ``base_accuracy`` to ``base_accuracy * robustness`` as difficulty
            goes from 0 to 1.
        cloud_speedup: how much faster the cloud function executes the model
            (cloud workers are provisioned per-invocation, so heavy models
            benefit more from offloading).
    """

    name: str
    seconds_per_inference: float
    base_accuracy: float
    robustness: float
    cloud_speedup: float

    def __post_init__(self):
        if self.seconds_per_inference <= 0:
            raise ConfigurationError("seconds_per_inference must be positive")
        if not 0.0 < self.base_accuracy <= 1.0:
            raise ConfigurationError("base_accuracy must be in (0, 1]")
        if not 0.0 <= self.robustness <= 1.0:
            raise ConfigurationError("robustness must be in [0, 1]")
        if self.cloud_speedup <= 0:
            raise ConfigurationError("cloud_speedup must be positive")

    def accuracy(self, difficulty: float) -> float:
        """Effective accuracy for content of the given difficulty in [0, 1]."""
        difficulty = min(max(difficulty, 0.0), 1.0)
        floor = self.base_accuracy * self.robustness
        return self.base_accuracy - (self.base_accuracy - floor) * difficulty


#: Registry of simulated model families.  Keyed by ``(family, variant)``.
MODEL_ZOO: Dict[str, Dict[str, ModelVariant]] = {
    "yolo": {
        "small": ModelVariant("small", 0.030, 0.82, 0.42, 1.6),
        "medium": ModelVariant("medium", 0.086, 0.90, 0.62, 1.8),
        "large": ModelVariant("large", 0.160, 0.95, 0.82, 2.0),
    },
    "transmot": {
        "small": ModelVariant("small", 0.060, 0.84, 0.45, 1.7),
        "medium": ModelVariant("medium", 0.140, 0.91, 0.65, 1.9),
        "large": ModelVariant("large", 0.280, 0.96, 0.85, 2.1),
    },
    "sentiment": {
        "small": ModelVariant("small", 0.050, 0.74, 0.55, 1.5),
        "medium": ModelVariant("medium", 0.120, 0.83, 0.70, 1.7),
        "large": ModelVariant("large", 0.260, 0.90, 0.85, 1.9),
    },
    "mask_classifier": {
        "small": ModelVariant("small", 0.012, 0.86, 0.60, 1.5),
        "medium": ModelVariant("medium", 0.025, 0.92, 0.75, 1.6),
        "large": ModelVariant("large", 0.050, 0.96, 0.86, 1.8),
    },
}


def get_model_variant(family: str, variant: str) -> ModelVariant:
    """Look up a model variant; raises :class:`ConfigurationError` if unknown."""
    if family not in MODEL_ZOO:
        raise ConfigurationError(
            f"unknown model family {family!r}; available: {sorted(MODEL_ZOO)}"
        )
    variants = MODEL_ZOO[family]
    if variant not in variants:
        raise ConfigurationError(
            f"unknown variant {variant!r} of family {family!r}; "
            f"available: {sorted(variants)}"
        )
    return variants[variant]
