"""Simulated classifiers: mask classification and multimodal sentiment.

The COVID workload classifies whether detected pedestrians wear masks
(ResNet-50 backbone fine-tuned on MaskedFace-Net); the MOSEI workload
classifies the opinion sentiment of a speaker from audio, transcript, and
visual features.  Both are modelled as classifiers whose accuracy depends on
the model size and on how much of the available evidence (frames per
sentence, lighting) the chosen knob configuration looks at.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.video.content import ContentState
from repro.vision.model_zoo import get_model_variant
from repro.vision.udf import OperatorCost, VisionOperator, clip01

_CLOUD_DOLLARS_PER_SECOND = 3.0 * 0.0000166667
_CLOUD_ROUND_TRIP_BASE = 0.12


@dataclass
class ClassificationResult:
    """Outcome of running a classifier over one unit of content.

    Attributes:
        items: number of classified items (pedestrians, sentences).
        correct: expected number of correct labels (ground truth; evaluation
            only).
        accuracy: ``correct / items``.
        reported_certainty: the model's average reported certainty — the
            observable quality signal (Section 5.2 uses certainty as an
            accuracy proxy, citing [55, 63]).
    """

    items: int
    correct: float
    accuracy: float
    reported_certainty: float


class SimulatedClassifier(VisionOperator):
    """A classifier with a model-size knob and an evidence-fraction knob.

    Args:
        family: model family in the zoo (``"mask_classifier"`` or
            ``"sentiment"``).
        evidence_weight: how strongly looking at less evidence (fewer frames
            per sentence, skipped sentences) hurts accuracy.
    """

    def __init__(
        self,
        family: str,
        evidence_weight: float = 0.3,
        seed: int = 0,
        noise_level: float = 0.02,
    ):
        super().__init__(name=f"{family}-classifier", noise_level=noise_level)
        self.family = family
        self.evidence_weight = evidence_weight
        self._rng = np.random.default_rng(seed)

    def invocation_cost(self, model_size: str = "medium", items: int = 1) -> OperatorCost:
        """Cost of classifying ``items`` items with the chosen model size."""
        if items < 0:
            raise ConfigurationError("items must be non-negative")
        variant = get_model_variant(self.family, model_size)
        on_prem = variant.seconds_per_inference * items
        cloud_compute = on_prem / variant.cloud_speedup
        return OperatorCost(
            on_prem_seconds=on_prem,
            cloud_seconds=_CLOUD_ROUND_TRIP_BASE + cloud_compute,
            cloud_dollars=cloud_compute * _CLOUD_DOLLARS_PER_SECOND,
            upload_bytes=int(60_000 * max(items, 1)),
            download_bytes=1_024,
        )

    def classify(
        self,
        content: ContentState,
        items: int,
        model_size: str = "medium",
        evidence_fraction: float = 1.0,
    ) -> ClassificationResult:
        """Classify ``items`` items given content difficulty and knobs.

        Args:
            content: content state of the segment.
            items: number of items to classify.
            model_size: model variant name.
            evidence_fraction: fraction of available evidence inspected
                (frame rate within a sentence, fraction of sentences kept).
        """
        if items < 0:
            raise ConfigurationError("items must be non-negative")
        if not 0.0 < evidence_fraction <= 1.0:
            raise ConfigurationError("evidence_fraction must be in (0, 1]")
        variant = get_model_variant(self.family, model_size)
        difficulty = clip01(
            0.45 * content.occlusion
            + 0.35 * (1.0 - content.lighting)
            + 0.25 * content.motion
        )
        base = variant.accuracy(difficulty)
        evidence_loss = self.evidence_weight * (1.0 - evidence_fraction)
        accuracy = clip01(base - evidence_loss + self._rng.normal(0.0, self.noise_level))
        correct = accuracy * items
        certainty = clip01(
            0.25 + 0.7 * accuracy + self._rng.normal(0.0, self.noise_level / 2.0)
        )
        return ClassificationResult(
            items=items,
            correct=correct,
            accuracy=accuracy,
            reported_certainty=certainty,
        )
