"""Simulated object trackers (KCF-like and TransMOT-like).

In the detect-to-track pattern (COVID workload) a cheap tracker follows the
objects found by the detector on intermediary frames; running the detector
less often saves work but loses objects that enter the scene between detector
invocations, and fast motion or occlusions break tracks.  KCF trackers report
tracking failures, which is exactly the observable quality metric the paper's
COVID workload feeds to Skyscraper.

The TransMOT-style tracker used by the MOT workload additionally has a model
size and a history-length knob: more history makes the tracker robust to
occlusions at a higher cost (Section J).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.video.content import ContentState
from repro.vision.model_zoo import get_model_variant
from repro.vision.udf import OperatorCost, VisionOperator, clip01

_CLOUD_DOLLARS_PER_SECOND = 3.0 * 0.0000166667
_CLOUD_ROUND_TRIP_BASE = 0.12


@dataclass
class TrackingResult:
    """Outcome of tracking over one segment.

    Attributes:
        tracked_objects: number of ground-truth objects correctly tracked
            across the segment.
        reported_failures: number of track losses the tracker itself reports
            (KCF reliably reports failures, Section 5.2).
        success_rate: fraction of detected objects tracked through the
            segment (ground truth, for evaluation only).
        reported_quality: the tracker's own quality signal in [0, 1].
    """

    tracked_objects: int
    reported_failures: int
    success_rate: float
    reported_quality: float


class SimulatedTracker(VisionOperator):
    """A KCF-like single-object tracker (cheap, per-object cost)."""

    def __init__(self, seed: int = 0, noise_level: float = 0.02):
        super().__init__(name="kcf-tracker", noise_level=noise_level)
        self._rng = np.random.default_rng(seed)
        #: single-core seconds to track one object in one frame
        self.seconds_per_object_frame = 0.0016

    def invocation_cost(self, objects: int = 1, frames: int = 1) -> OperatorCost:
        """Cost of tracking ``objects`` objects over ``frames`` frames."""
        if objects < 0 or frames < 0:
            raise ConfigurationError("objects and frames must be non-negative")
        on_prem = self.seconds_per_object_frame * objects * frames
        cloud_compute = on_prem / 1.4
        return OperatorCost(
            on_prem_seconds=on_prem,
            cloud_seconds=_CLOUD_ROUND_TRIP_BASE + cloud_compute,
            cloud_dollars=cloud_compute * _CLOUD_DOLLARS_PER_SECOND,
            upload_bytes=int(24_000 * max(objects, 1)),
            download_bytes=2_048,
        )

    def track_segment(
        self,
        content: ContentState,
        detected_objects: int,
        detection_interval_frames: int,
        processed_frame_rate: float,
        native_frame_rate: float = 30.0,
    ) -> TrackingResult:
        """Track the detected objects through a segment.

        Track losses grow with occlusion, with motion, with how rarely the
        detector re-initializes tracks (``detection_interval_frames``), and
        with how few frames are processed (``processed_frame_rate``).
        """
        if detection_interval_frames < 1:
            raise ConfigurationError("detection_interval_frames must be >= 1")
        if processed_frame_rate <= 0 or native_frame_rate <= 0:
            raise ConfigurationError("frame rates must be positive")
        frame_gap = min(processed_frame_rate / native_frame_rate, 1.0)
        loss_probability = clip01(
            0.10
            + 0.45 * content.occlusion
            + 0.25 * content.motion * (1.0 - frame_gap)
            + 0.015 * (detection_interval_frames - 1) / 10.0
        )
        success_rate = clip01(1.0 - loss_probability + self._rng.normal(0.0, self.noise_level))
        tracked = int(round(detected_objects * success_rate))
        failures = max(detected_objects - tracked, 0)
        # KCF reports ~90% of its failures; the remainder is silent drift.
        reported_failures = int(round(failures * 0.9))
        reported_quality = clip01(
            1.0 - reported_failures / max(detected_objects, 1)
            + self._rng.normal(0.0, self.noise_level / 2.0)
        )
        return TrackingResult(
            tracked_objects=tracked,
            reported_failures=reported_failures,
            success_rate=success_rate,
            reported_quality=reported_quality,
        )


class SimulatedTransMOT(VisionOperator):
    """A TransMOT-like graph-transformer tracker with size and history knobs."""

    def __init__(self, seed: int = 0, noise_level: float = 0.02):
        super().__init__(name="transmot", noise_level=noise_level)
        self._rng = np.random.default_rng(seed)

    def invocation_cost(
        self,
        model_size: str = "medium",
        history: int = 1,
        tiles: int = 1,
        width: int = 1280,
        height: int = 720,
    ) -> OperatorCost:
        """Cost of one TransMOT inference over one frame (plus its history)."""
        if history < 1:
            raise ConfigurationError("history must be at least 1")
        if tiles < 1:
            raise ConfigurationError("tiles must be at least 1")
        variant = get_model_variant("transmot", model_size)
        resolution_scale = (width * height) / (1280 * 720)
        history_scale = 0.7 + 0.3 * history
        on_prem = variant.seconds_per_inference * tiles * history_scale * max(resolution_scale, 0.1)
        cloud_compute = on_prem / variant.cloud_speedup
        return OperatorCost(
            on_prem_seconds=on_prem,
            cloud_seconds=_CLOUD_ROUND_TRIP_BASE + cloud_compute,
            cloud_dollars=cloud_compute * _CLOUD_DOLLARS_PER_SECOND,
            upload_bytes=int(170_000 * tiles + 30_000 * history),
            download_bytes=8_192,
        )

    def track_segment(
        self,
        content: ContentState,
        ground_truth_objects: int,
        model_size: str = "medium",
        history: int = 1,
        tiles: int = 1,
        sampling_fraction: float = 1.0,
    ) -> TrackingResult:
        """Track all objects in a segment with the TransMOT-style model.

        History absorbs occlusions (a track interrupted by an occlusion can be
        re-associated when more past frames are considered), tiling recovers
        small objects, and sparse sampling loses fast-moving objects.
        """
        if not 0.0 < sampling_fraction <= 1.0:
            raise ConfigurationError("sampling_fraction must be in (0, 1]")
        variant = get_model_variant("transmot", model_size)
        history_relief = min((history - 1) * 0.12, 0.4)
        difficulty = clip01(
            0.7 * content.occlusion * (1.0 - history_relief)
            + 0.2 * (1.0 - content.lighting)
            + 0.15 * content.motion * (1.0 - sampling_fraction)
        )
        base = variant.accuracy(difficulty)
        small_fraction = 0.2 * content.object_density
        tiling_adjustment = -small_fraction if tiles == 1 else -small_fraction / tiles
        success_rate = clip01(base + tiling_adjustment + self._rng.normal(0.0, self.noise_level))
        tracked = int(round(ground_truth_objects * success_rate))
        # The model reports a per-track certainty correlated with success.
        certainty = clip01(0.3 + 0.65 * success_rate + self._rng.normal(0.0, self.noise_level / 2))
        return TrackingResult(
            tracked_objects=tracked,
            reported_failures=max(ground_truth_objects - tracked, 0),
            success_rate=success_rate,
            reported_quality=certainty,
        )
