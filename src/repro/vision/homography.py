"""Homography-based distance measurement (COVID social-distancing step).

The COVID workload maps every detected pedestrian's image position onto the
ground plane with a homography [18] and measures pairwise distances.  This is
a cheap geometric computation; its cost scales with the number of detections
and its output feeds the social-distancing statistics loaded into the
warehouse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.vision.udf import OperatorCost, VisionOperator

_CLOUD_DOLLARS_PER_SECOND = 3.0 * 0.0000166667
_CLOUD_ROUND_TRIP_BASE = 0.12


@dataclass(frozen=True)
class DistanceViolation:
    """A pair of pedestrians closer than the social-distance threshold."""

    first_object: int
    second_object: int
    distance_meters: float


class HomographyDistance(VisionOperator):
    """Plane-measuring device: image coordinates → ground-plane distances.

    Args:
        homography: 3x3 matrix mapping homogeneous image coordinates to
            ground-plane coordinates in meters; the default corresponds to a
            camera roughly 8 m above a street looking down at ~40 degrees.
        threshold_meters: distance below which a pair counts as a violation.
    """

    def __init__(
        self,
        homography: np.ndarray = None,
        threshold_meters: float = 2.0,
    ):
        super().__init__(name="homography-distance", noise_level=0.0)
        if homography is None:
            homography = np.array(
                [
                    [0.012, 0.0, -7.5],
                    [0.0, 0.045, -12.0],
                    [0.0, 0.0015, 1.0],
                ]
            )
        homography = np.asarray(homography, dtype=float)
        if homography.shape != (3, 3):
            raise ConfigurationError("homography must be a 3x3 matrix")
        if threshold_meters <= 0:
            raise ConfigurationError("threshold_meters must be positive")
        self.homography = homography
        self.threshold_meters = threshold_meters
        #: single-core seconds per detected object (projection + pair checks)
        self.seconds_per_object = 0.00008

    def invocation_cost(self, objects: int = 1) -> OperatorCost:
        if objects < 0:
            raise ConfigurationError("objects must be non-negative")
        # Pairwise distance checks are quadratic but tiny.
        on_prem = self.seconds_per_object * objects + 1e-6 * objects * objects
        return OperatorCost(
            on_prem_seconds=on_prem,
            cloud_seconds=_CLOUD_ROUND_TRIP_BASE + on_prem,
            cloud_dollars=on_prem * _CLOUD_DOLLARS_PER_SECOND,
            upload_bytes=256 * max(objects, 1),
            download_bytes=256,
        )

    def project(self, image_points: Sequence[Tuple[float, float]]) -> np.ndarray:
        """Map image pixel coordinates to ground-plane coordinates in meters."""
        points = np.asarray(image_points, dtype=float)
        if points.size == 0:
            return np.zeros((0, 2))
        if points.ndim != 2 or points.shape[1] != 2:
            raise ConfigurationError("image_points must be an (n, 2) array")
        homogeneous = np.hstack([points, np.ones((points.shape[0], 1))])
        mapped = homogeneous @ self.homography.T
        scale = mapped[:, 2:3]
        scale = np.where(np.abs(scale) < 1e-9, 1e-9, scale)
        return mapped[:, :2] / scale

    def violations(
        self, image_points: Sequence[Tuple[float, float]]
    ) -> List[DistanceViolation]:
        """Pairs of points closer than the threshold on the ground plane."""
        ground = self.project(image_points)
        result: List[DistanceViolation] = []
        for i in range(ground.shape[0]):
            for j in range(i + 1, ground.shape[0]):
                distance = float(np.linalg.norm(ground[i] - ground[j]))
                if distance < self.threshold_meters:
                    result.append(
                        DistanceViolation(first_object=i, second_object=j, distance_meters=distance)
                    )
        return result

    def violation_count(self, image_points: Sequence[Tuple[float, float]]) -> int:
        return len(self.violations(image_points))
