"""Skyscraper: a reproduction of "Extract-Transform-Load for Video Streams".

The package is organized as:

* :mod:`repro.core` — Skyscraper itself (knob planning, switching, the
  offline learning phase, the ingestion engine and the public API);
* :mod:`repro.video`, :mod:`repro.vision`, :mod:`repro.cluster`,
  :mod:`repro.warehouse`, :mod:`repro.ml` — the substrates the system runs on
  (synthetic video, simulated CV operators, the execution/cost model, the
  Load-step warehouse, and from-scratch ML algorithms);
* :mod:`repro.workloads` — the paper's evaluation workloads (EV counting,
  COVID, MOT, MOSEI);
* :mod:`repro.baselines` — Static, Chameleon*, VideoStorm, Optimum and the
  idealized Appendix-B design;
* :mod:`repro.registry` — the pluggable policy registry every system
  registers with;
* :mod:`repro.experiments` — the unified experiment runner and the harness
  behind every benchmark.
"""

from repro.core.skyscraper import Skyscraper, SkyscraperResources
from repro.core.engine import IngestionEngine, IngestionResult
from repro.core.artifacts import OfflineArtifacts
from repro.registry import (
    PolicySpec,
    RunContext,
    create_policy,
    policy_names,
    policy_spec,
    register_policy,
)
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentRunner,
    SystemBundle,
    prepare_bundle,
)
from repro.errors import (
    ReproError,
    ConfigurationError,
    BufferOverflowError,
    BudgetExceededError,
    NotFittedError,
    PlanningError,
    PlacementError,
    QueryError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "Skyscraper",
    "SkyscraperResources",
    "IngestionEngine",
    "IngestionResult",
    "OfflineArtifacts",
    "PolicySpec",
    "RunContext",
    "create_policy",
    "policy_names",
    "policy_spec",
    "register_policy",
    "ExperimentConfig",
    "ExperimentRunner",
    "SystemBundle",
    "prepare_bundle",
    "ReproError",
    "ConfigurationError",
    "BufferOverflowError",
    "BudgetExceededError",
    "NotFittedError",
    "PlanningError",
    "PlacementError",
    "QueryError",
    "WorkloadError",
    "__version__",
]
