"""Tenant descriptions for fleet-level joint planning.

A :class:`TenantSpec` is the declarative unit the fleet planner allocates
to: a named group of streams that shares one workload mix, one quality
weight, one cloud cost ratio and (optionally) one quality SLO.  Tenants are
deliberately decoupled from the runtime fleet objects — the planner only
needs the handful of scalars below plus a demand curve, which keeps the
planning layer importable without a fitted system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.cluster.cost import CLOUD_TO_ON_PREM_RATIO
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the shared fleet, as the joint planner sees it.

    Attributes:
        tenant_id: unique name (matches ``FleetStreamSpec.tenant``).
        n_streams: number of streams the tenant ingests; the tenant's
            allocation is divided evenly across them at deploy time.
        weight: relative importance of one unit of this tenant's quality in
            the fleet objective (per stream — a tenant with ``weight=2``
            counts each of its streams twice as much as a ``weight=1`` one).
        min_quality: quality SLO in expected-quality units (the Section 4.1
            LP objective, ``0..1``).  Admission control rejects the tenant
            when no feasible allocation reaches this floor; ``0.0`` disables
            the check.
        cost_ratio: the tenant's cloud-to-on-prem cost ratio (Section 2.1's
            1.8x by default) — tenants in pricier regions burn the shared
            budget faster for the same cloud work.
        forecast: optional per-category content forecast (fractions summing
            to 1) used when probing the tenant's demand curve; ``None``
            falls back to the problem-wide default forecast.
    """

    tenant_id: str
    n_streams: int
    weight: float = 1.0
    min_quality: float = 0.0
    cost_ratio: float = CLOUD_TO_ON_PREM_RATIO
    forecast: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ConfigurationError("tenant_id must be non-empty")
        if self.n_streams < 1:
            raise ConfigurationError(
                f"tenant {self.tenant_id!r}: n_streams must be >= 1, "
                f"got {self.n_streams}"
            )
        if self.weight <= 0:
            raise ConfigurationError(
                f"tenant {self.tenant_id!r}: weight must be > 0, "
                f"got {self.weight}"
            )
        if self.min_quality < 0:
            raise ConfigurationError(
                f"tenant {self.tenant_id!r}: min_quality must be >= 0, "
                f"got {self.min_quality}"
            )
        if self.cost_ratio <= 0:
            raise ConfigurationError(
                f"tenant {self.tenant_id!r}: cost_ratio must be > 0, "
                f"got {self.cost_ratio}"
            )
        if self.forecast is not None:
            forecast = np.asarray(self.forecast, dtype=float)
            if forecast.ndim != 1 or forecast.size == 0:
                raise ConfigurationError(
                    f"tenant {self.tenant_id!r}: forecast must be a "
                    "non-empty 1-d vector"
                )
            if np.any(forecast < 0):
                raise ConfigurationError(
                    f"tenant {self.tenant_id!r}: forecast must be "
                    "non-negative"
                )
            total = float(forecast.sum())
            if total <= 0:
                raise ConfigurationError(
                    f"tenant {self.tenant_id!r}: forecast must have "
                    "positive mass"
                )
            object.__setattr__(self, "forecast", forecast / total)

    @property
    def total_weight(self) -> float:
        """The tenant's total pull on the objective (``weight * n_streams``)."""
        return self.weight * self.n_streams


def tilt_forecast(
    base: Sequence[float], category: int, strength: float = 2.0
) -> np.ndarray:
    """A copy of ``base`` with ``category`` over-represented by ``strength``.

    Used to build *heterogeneous* tenants from one fitted workload: each
    tenant expects a different content mix, so the knob planner prices their
    quality differently and the joint allocation becomes non-trivial.
    """
    forecast = np.asarray(base, dtype=float).copy()
    if forecast.ndim != 1 or forecast.size == 0:
        raise ConfigurationError("base forecast must be a non-empty 1-d vector")
    if not 0 <= category < forecast.size:
        raise ConfigurationError(
            f"category {category} out of range for {forecast.size} categories"
        )
    if strength <= 0:
        raise ConfigurationError(f"strength must be > 0, got {strength}")
    forecast[category] *= strength
    total = float(forecast.sum())
    if total <= 0:
        raise ConfigurationError("tilted forecast lost all mass")
    return forecast / total
