"""SLO admission control: reject tenants no allocation can satisfy.

A tenant declares a quality SLO (``TenantSpec.min_quality``).  Before the
fleet plans, the :class:`AdmissionController` asks the simplest sufficient
question: *if this tenant got the entire cloud budget and every core,
could its knob planner reach the SLO?*  Quality is monotone in budget, so
a "no" at maximal generosity is a proof that no feasible allocation works
— the tenant is rejected at submit time with a classified, non-retryable
error instead of being admitted and silently starved.

The controller plugs into :class:`repro.service.dispatcher.JobDispatcher`
as its ``admission`` hook; the raised :class:`SloAdmissionError` carries
``error_code = "slo_infeasible"``, which ``classify_error`` surfaces so
rejected submissions dead-letter immediately instead of burning retries.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import AdmissionError
from repro.planning.demand import PlanningProblem
from repro.planning.tenants import TenantSpec

_EPS = 1e-9


class SloAdmissionError(AdmissionError):
    """A tenant's quality SLO is unreachable at any feasible allocation."""

    #: Stable classification consumed by ``repro.service.jobs.classify_error``.
    error_code = "slo_infeasible"

    def __init__(self, tenant_id: str, reason: str):
        super().__init__(f"tenant {tenant_id!r} rejected at admission: {reason}")
        self.tenant_id = tenant_id
        self.reason = reason


class AdmissionController:
    """Decides, per tenant, whether any feasible allocation meets the SLO.

    Args:
        problem: the planning problem covering every candidate tenant.
    """

    def __init__(self, problem: PlanningProblem):
        self.problem = problem
        self._rejections: Optional[Dict[str, str]] = None

    def rejections(self) -> Dict[str, str]:
        """Rejected tenant ids mapped to a human-readable reason."""
        if self._rejections is None:
            self._rejections = {}
            for spec in self.problem.tenants:
                reason = self._rejection_reason(spec)
                if reason is not None:
                    self._rejections[spec.tenant_id] = reason
        return self._rejections

    def admitted(self) -> List[TenantSpec]:
        """Tenants that pass admission, in problem order."""
        rejected = self.rejections()
        return [
            spec
            for spec in self.problem.tenants
            if spec.tenant_id not in rejected
        ]

    def check(self, tenant_id: str) -> None:
        """Dispatcher hook: raise for rejected tenants, pass otherwise.

        Tenants the planning problem does not know about pass through —
        admission only governs what it has a demand curve for (quota checks
        still apply downstream).
        """
        reason = self.rejections().get(tenant_id)
        if reason is not None:
            raise SloAdmissionError(tenant_id, reason)

    def _rejection_reason(self, spec: TenantSpec) -> Optional[str]:
        demand = self.problem.demands.get(spec.tenant_id)
        if demand is None or not demand.feasible:
            return (
                "no feasible allocation exists at any candidate budget "
                "(the knob planner cannot afford its cheapest configuration)"
            )
        # Maximal generosity: the whole budget and every core.
        best = self.problem.quality_at(
            spec, self.problem.cores, self.problem.cloud_budget_per_day
        )
        if best is None:
            best = demand.best_quality
        best = max(best, demand.best_quality)
        if best + _EPS < spec.min_quality:
            return (
                f"best achievable quality {best:.4f} is below the "
                f"min_quality SLO {spec.min_quality:.4f} even with the full "
                f"budget (${self.problem.cloud_budget_per_day:.2f}/day) and "
                f"all {self.problem.cores:g} cores"
            )
        return None
