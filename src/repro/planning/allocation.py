"""Plan outputs and their runtime deployment as per-tenant sub-budgets.

A fleet planner returns a :class:`FleetPlan` — one :class:`BudgetAllocation`
per admitted tenant.  Deploying a plan means two things:

* the *cloud dollars* become hard caps, enforced by wrapping the fleet's
  shared daily ledger in one :class:`TenantSubLedger` per tenant: a charge
  must fit under both the tenant's cap and the fleet-wide budget, so no
  tenant can starve the others even when its streams misbehave;
* the *cores* stay a planning construct — the cluster is time-shared by the
  fleet scheduler, so a fractional core allocation expresses the share of
  on-premise compute the plan priced in, not a physical partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.fleet import DailyBudgetLedger
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BudgetAllocation:
    """One tenant's slice of the fleet resources.

    Attributes:
        tenant_id: the tenant this allocation belongs to.
        cores: on-premise core share (fractional; time-shared).
        cloud_dollars_per_day: daily cloud spending cap.
        budget_core_seconds_per_segment: the per-stream per-segment budget
            the allocation buys (what each stream's knob planner plans to).
        expected_quality: expected per-stream quality at that budget.
    """

    tenant_id: str
    cores: float
    cloud_dollars_per_day: float
    budget_core_seconds_per_segment: float
    expected_quality: float

    def __post_init__(self) -> None:
        if self.cores < 0 or self.cloud_dollars_per_day < 0:
            raise ConfigurationError(
                f"allocation for {self.tenant_id!r} must be non-negative"
            )


@dataclass
class FleetPlan:
    """The output of one fleet planner run.

    Attributes:
        planner: registry name of the planner that produced the plan.
        allocations: per-tenant allocations, keyed by tenant id.
        objective: stream-weighted mean expected quality over the admitted
            tenants (``sum(w_t * n_t * q_t) / sum(w_t * n_t)``) — the common
            yardstick across the solver ladder.
        cloud_budget_per_day: the budget the plan was solved against.
        cores: the core capacity the plan was solved against.
        rejected: tenants refused at admission, mapped to the reason.
    """

    planner: str
    allocations: Dict[str, BudgetAllocation]
    objective: float
    cloud_budget_per_day: float
    cores: float
    rejected: Dict[str, str] = field(default_factory=dict)

    @property
    def total_cloud_dollars(self) -> float:
        """Daily cloud dollars committed across all allocations."""
        return sum(a.cloud_dollars_per_day for a in self.allocations.values())

    @property
    def total_cores(self) -> float:
        """On-premise cores committed across all allocations."""
        return sum(a.cores for a in self.allocations.values())

    def allocation(self, tenant_id: str) -> BudgetAllocation:
        """The tenant's allocation, raising if the plan does not cover it."""
        allocation = self.allocations.get(tenant_id)
        if allocation is None:
            raise ConfigurationError(f"plan has no allocation for {tenant_id!r}")
        return allocation

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (reports, BENCH payloads, figures)."""
        return {
            "planner": self.planner,
            "objective": self.objective,
            "cloud_budget_per_day": self.cloud_budget_per_day,
            "cores": self.cores,
            "total_cloud_dollars": self.total_cloud_dollars,
            "total_cores": self.total_cores,
            "allocations": {
                tenant_id: {
                    "cores": allocation.cores,
                    "cloud_dollars_per_day": allocation.cloud_dollars_per_day,
                    "budget_core_seconds_per_segment": (
                        allocation.budget_core_seconds_per_segment
                    ),
                    "expected_quality": allocation.expected_quality,
                }
                for tenant_id, allocation in sorted(self.allocations.items())
            },
            "rejected": dict(sorted(self.rejected.items())),
        }


class TenantSubLedger:
    """A tenant-capped view of the fleet's shared daily budget ledger.

    Quacks like :class:`repro.core.fleet.DailyBudgetLedger`, so it drops
    straight into ``FleetStream.ledger``.  ``remaining`` is the minimum of
    the tenant's unspent cap and the parent's unspent budget; ``charge``
    records the spend in both, so per-tenant accounting and the fleet-wide
    total stay consistent.

    The per-tenant tracker defaults to a process-local
    :class:`DailyBudgetLedger`; pass a
    :class:`repro.service.ledger.SharedDailyLedger` as ``tracker`` when the
    tenant's streams drain on several worker processes.
    """

    def __init__(
        self,
        parent: Any,
        daily_cap_dollars: float,
        tracker: Optional[Any] = None,
    ):
        if daily_cap_dollars < 0:
            raise ConfigurationError("daily_cap_dollars must be non-negative")
        self.parent = parent
        self.daily_cap_dollars = daily_cap_dollars
        self.tracker = tracker if tracker is not None else DailyBudgetLedger(
            daily_cap_dollars
        )

    def remaining(self, time: float) -> float:
        """Unspent dollars at ``time``: min of the tenant cap and the parent."""
        return min(self.tracker.remaining(time), self.parent.remaining(time))

    def charge(self, time: float, dollars: float) -> None:
        """Record a spend against both the tenant tracker and the parent."""
        self.tracker.charge(time, dollars)
        self.parent.charge(time, dollars)

    def spent_on(self, time: float) -> float:
        """The tenant's spend on the day containing ``time``."""
        return self.tracker.spent_on(time)

    @property
    def spend_by_day(self) -> Dict[int, float]:
        """The tenant's spend per day index (from the tenant tracker)."""
        return self.tracker.spend_by_day

    @property
    def total_dollars(self) -> float:
        """The tenant's total spend across all days."""
        return self.tracker.total_dollars


def build_tenant_ledgers(
    plan: FleetPlan,
    parent: Any,
    tracker_factory: Optional[Callable[[float], Any]] = None,
) -> Dict[str, TenantSubLedger]:
    """One :class:`TenantSubLedger` per allocation in ``plan``.

    ``tracker_factory`` builds the per-tenant spend tracker from the
    tenant's daily cap (defaults to a process-local
    :class:`DailyBudgetLedger`; the ingestion service passes a factory that
    builds shared-memory ledgers instead).
    """
    ledgers: Dict[str, TenantSubLedger] = {}
    for tenant_id, allocation in plan.allocations.items():
        tracker = (
            tracker_factory(allocation.cloud_dollars_per_day)
            if tracker_factory is not None
            else None
        )
        ledgers[tenant_id] = TenantSubLedger(
            parent, allocation.cloud_dollars_per_day, tracker=tracker
        )
    return ledgers


def allocations_from_choices(
    planner: str,
    problem,
    chosen: Dict[str, Any],
) -> FleetPlan:
    """Assemble a :class:`FleetPlan` from per-tenant chosen options.

    ``chosen`` maps tenant id to an object with ``cores``,
    ``cloud_dollars_per_day``, ``budget_core_seconds_per_segment`` and
    ``quality`` attributes (an :class:`repro.planning.demand.AllocationOption`).
    """
    allocations: Dict[str, BudgetAllocation] = {}
    objective_mass = 0.0
    for spec in problem.tenants:
        option = chosen.get(spec.tenant_id)
        if option is None:
            raise ConfigurationError(
                f"planner {planner!r} produced no allocation for "
                f"{spec.tenant_id!r}"
            )
        allocations[spec.tenant_id] = BudgetAllocation(
            tenant_id=spec.tenant_id,
            cores=option.cores,
            cloud_dollars_per_day=option.cloud_dollars_per_day,
            budget_core_seconds_per_segment=(
                option.budget_core_seconds_per_segment
            ),
            expected_quality=option.quality,
        )
        objective_mass += spec.total_weight * option.quality
    objective = objective_mass / problem.total_weight
    return FleetPlan(
        planner=planner,
        allocations=allocations,
        objective=objective,
        cloud_budget_per_day=problem.cloud_budget_per_day,
        cores=problem.cores,
    )
