"""The fleet-planner solver ladder: per_stream → greedy → knapsack → lp.

Every planner consumes a :class:`repro.planning.demand.PlanningProblem` and
returns a :class:`repro.planning.allocation.FleetPlan` whose objective is
the stream-weighted mean expected quality.  The ladder is ordered by
construction, not by hope: the knapsack rung also solves the greedy rung
and returns whichever plan scores higher, and the LP rung does the same
with the knapsack plan — so ``greedy <= knapsack <= lp`` holds on every
instance, while each rung still showcases its own algorithm on the
instances where it wins.

* ``per_stream`` — the paper's baseline posture: every tenant gets a share
  of cores and dollars proportional to its stream count, i.e. what you get
  when each stream plans independently against an equal slice.  Ignores
  weights, cost ratios and forecast differences entirely.
* ``greedy`` — marginal-utility ascent: cores stay proportional, each
  tenant starts at its cheapest feasible budget level, then the budget
  upgrade with the best weighted quality-per-dollar ratio is applied until
  the budget runs out.
* ``knapsack`` — multiple-choice 0-1 knapsack (via
  :func:`repro.ml.knapsack.greedy_knapsack`) over the budget levels of each
  candidate core split, best split wins.
* ``lp`` — the joint linear program over the full option grid: pick a
  convex combination of options per tenant, subject to the shared dollar
  and core capacity constraints.  Since quality is concave in budget, the
  expected allocation of the LP solution is deployable at no loss.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.errors import ConfigurationError, PlanningError
from repro.ml.knapsack import KnapsackItem, greedy_knapsack
from repro.ml.linear_program import LinearProgram
from repro.planning.allocation import FleetPlan, allocations_from_choices
from repro.planning.demand import AllocationOption, PlanningProblem

_EPS = 1e-9


class FleetPlanner(Protocol):
    """Anything that turns a planning problem into a fleet plan."""

    name: str

    def plan(self, problem: PlanningProblem) -> FleetPlan:
        """Allocate the problem's budget and cores across its tenants."""
        ...


_PLANNERS: Dict[str, Callable[[], FleetPlanner]] = {}


def register_planner(name: str):
    """Class decorator registering a planner under ``name``."""

    def decorate(cls):
        if name in _PLANNERS:
            raise ConfigurationError(f"planner {name!r} already registered")
        cls.name = name
        _PLANNERS[name] = cls
        return cls

    return decorate


def planner_names() -> List[str]:
    """Registered planner names (the CLI ``--planner`` choices)."""
    return sorted(_PLANNERS)


def make_planner(name: str) -> FleetPlanner:
    """Instantiate the planner registered under ``name``."""
    factory = _PLANNERS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown planner {name!r}; available: {planner_names()}"
        )
    return factory()


def _feasible_levels(
    problem: PlanningProblem, spec, cores: float
) -> List[AllocationOption]:
    """The tenant's feasible options at fixed ``cores``, by ascending cost."""
    options = []
    for dollars in problem.budget_levels:
        option = problem.option_at(spec, cores, dollars)
        if option is not None:
            options.append(option)
    return options


@register_planner("per_stream")
class PerStreamPlanner:
    """Independent per-stream planning: proportional shares for everyone."""

    def plan(self, problem: PlanningProblem) -> FleetPlan:
        """Give every tenant its stream-proportional core and dollar slice."""
        total_streams = problem.total_streams
        chosen: Dict[str, AllocationOption] = {}
        for spec in problem.tenants:
            share = spec.n_streams / total_streams
            cores = problem.cores * share
            dollars = problem.cloud_budget_per_day * share
            option = problem.option_at(spec, cores, dollars)
            if option is None:
                raise PlanningError(
                    f"tenant {spec.tenant_id!r} is infeasible at its "
                    "proportional share; run admission control before "
                    "per-stream planning"
                )
            chosen[spec.tenant_id] = option
        return allocations_from_choices(self.name, problem, chosen)


@register_planner("greedy")
class GreedyMarginalUtilityPlanner:
    """Marginal-utility ascent over budget levels at proportional cores."""

    def plan(self, problem: PlanningProblem) -> FleetPlan:
        """Ascend from the cheapest feasible levels by best quality-per-dollar."""
        split = problem.core_splits["proportional"]
        levels: Dict[str, List[AllocationOption]] = {}
        current: Dict[str, int] = {}
        for spec in problem.tenants:
            feasible = _feasible_levels(problem, spec, split[spec.tenant_id])
            if not feasible:
                raise PlanningError(
                    f"tenant {spec.tenant_id!r} has no feasible budget level; "
                    "run admission control before greedy planning"
                )
            levels[spec.tenant_id] = feasible
            current[spec.tenant_id] = 0

        def spent() -> float:
            return sum(
                levels[tenant_id][index].cloud_dollars_per_day
                for tenant_id, index in current.items()
            )

        if spent() > problem.cloud_budget_per_day + _EPS:
            raise PlanningError(
                "even the cheapest feasible allocation per tenant exceeds "
                f"the shared budget (${spent():.3f} > "
                f"${problem.cloud_budget_per_day:.3f}/day)"
            )

        while True:
            budget_left = problem.cloud_budget_per_day - spent()
            best: Optional[Tuple[float, str, int]] = None
            for spec in problem.tenants:
                tenant_levels = levels[spec.tenant_id]
                here = tenant_levels[current[spec.tenant_id]]
                for index in range(
                    current[spec.tenant_id] + 1, len(tenant_levels)
                ):
                    upgrade = tenant_levels[index]
                    extra = (
                        upgrade.cloud_dollars_per_day
                        - here.cloud_dollars_per_day
                    )
                    gain = upgrade.quality - here.quality
                    if extra <= _EPS or gain <= _EPS:
                        continue
                    if extra > budget_left + _EPS:
                        continue
                    ratio = spec.total_weight * gain / extra
                    if best is None or ratio > best[0]:
                        best = (ratio, spec.tenant_id, index)
            if best is None:
                break
            _, tenant_id, index = best
            current[tenant_id] = index

        chosen = {
            tenant_id: levels[tenant_id][index]
            for tenant_id, index in current.items()
        }
        return allocations_from_choices(self.name, problem, chosen)


@register_planner("knapsack")
class KnapsackPlanner:
    """Multiple-choice knapsack over budget levels, best core split wins.

    Internally also runs the greedy rung and keeps the better plan, so the
    ladder ordering ``greedy <= knapsack`` holds by construction.
    """

    def plan(self, problem: PlanningProblem) -> FleetPlan:
        """Solve a knapsack per core split and keep the best candidate plan."""
        candidates: List[FleetPlan] = []
        for split in problem.core_splits.values():
            items: List[KnapsackItem] = []
            covered = set()
            for spec in problem.tenants:
                feasible = _feasible_levels(
                    problem, spec, split[spec.tenant_id]
                )
                if feasible:
                    covered.add(spec.tenant_id)
                for option in feasible:
                    items.append(
                        KnapsackItem(
                            key=spec.tenant_id,
                            option=option,
                            value=spec.total_weight * option.quality,
                            cost=option.cloud_dollars_per_day,
                        )
                    )
            if covered != {spec.tenant_id for spec in problem.tenants}:
                continue  # this split starves a tenant entirely
            choices, _, total_cost = greedy_knapsack(
                items, problem.cloud_budget_per_day
            )
            if total_cost > problem.cloud_budget_per_day + _EPS:
                continue  # cheapest-per-tenant baseline already over budget
            chosen = {key: item.option for key, item in choices.items()}
            plan = allocations_from_choices(self.name, problem, chosen)
            candidates.append(plan)
        try:
            greedy = make_planner("greedy").plan(problem)
        except PlanningError:
            greedy = None
        if greedy is not None:
            candidates.append(
                FleetPlan(
                    planner=self.name,
                    allocations=greedy.allocations,
                    objective=greedy.objective,
                    cloud_budget_per_day=greedy.cloud_budget_per_day,
                    cores=greedy.cores,
                )
            )
        if not candidates:
            raise PlanningError(
                "no core split admits a within-budget knapsack plan"
            )
        return max(candidates, key=lambda plan: plan.objective)


@register_planner("lp")
class JointLpPlanner:
    """Joint LP over the full option grid under both capacity constraints.

    The LP relaxes "pick one option per tenant" to a convex combination;
    because every knapsack solution is a feasible LP point over the same
    grid, and the knapsack plan is kept as a fallback candidate, the ladder
    ordering ``knapsack <= lp`` holds by construction.
    """

    def plan(self, problem: PlanningProblem) -> FleetPlan:
        """Solve the joint LP, falling back to the knapsack plan if better."""
        candidates: List[FleetPlan] = []
        lp_plan = self._solve_lp(problem)
        if lp_plan is not None:
            candidates.append(lp_plan)
        try:
            knapsack = make_planner("knapsack").plan(problem)
        except PlanningError:
            knapsack = None
        if knapsack is not None:
            candidates.append(
                FleetPlan(
                    planner=self.name,
                    allocations=knapsack.allocations,
                    objective=knapsack.objective,
                    cloud_budget_per_day=knapsack.cloud_budget_per_day,
                    cores=knapsack.cores,
                )
            )
        if not candidates:
            raise PlanningError(
                "the joint LP is infeasible and no knapsack fallback exists"
            )
        return max(candidates, key=lambda plan: plan.objective)

    def _solve_lp(self, problem: PlanningProblem) -> Optional[FleetPlan]:
        lp = LinearProgram()
        option_lists: Dict[str, List[AllocationOption]] = {}
        dollar_coefficients: Dict = {}
        core_coefficients: Dict = {}
        for spec in problem.tenants:
            options = problem.demands[spec.tenant_id].options
            if not options:
                return None
            option_lists[spec.tenant_id] = options
            for index, option in enumerate(options):
                key = ("x", spec.tenant_id, index)
                lp.add_variable(
                    key,
                    objective=spec.total_weight * option.quality,
                    lower=0.0,
                    upper=1.0,
                )
                dollar_coefficients[key] = option.cloud_dollars_per_day
                core_coefficients[key] = option.cores
            lp.add_constraint_eq(
                {
                    ("x", spec.tenant_id, index): 1.0
                    for index in range(len(options))
                },
                1.0,
            )
        lp.add_constraint_le(dollar_coefficients, problem.cloud_budget_per_day)
        lp.add_constraint_le(core_coefficients, problem.cores)
        try:
            solution = lp.solve()
        except PlanningError:
            return None

        chosen: Dict[str, AllocationOption] = {}
        for spec in problem.tenants:
            options = option_lists[spec.tenant_id]
            fractions = [
                max(solution[("x", spec.tenant_id, index)], 0.0)
                for index in range(len(options))
            ]
            mass = sum(fractions)
            if mass <= 0:
                return None
            fractions = [fraction / mass for fraction in fractions]
            cores = sum(
                fraction * option.cores
                for fraction, option in zip(fractions, options)
            )
            dollars = sum(
                fraction * option.cloud_dollars_per_day
                for fraction, option in zip(fractions, options)
            )
            quality = sum(
                fraction * option.quality
                for fraction, option in zip(fractions, options)
            )
            chosen[spec.tenant_id] = AllocationOption(
                cores=cores,
                cloud_dollars_per_day=dollars,
                budget_core_seconds_per_segment=problem.budget_for(
                    spec, cores, dollars
                ),
                quality=quality,
            )
        return allocations_from_choices(self.name, problem, chosen)


def solve_ladder(
    problem: PlanningProblem,
    planners: Sequence[str] = ("per_stream", "greedy", "knapsack", "lp"),
) -> Dict[str, FleetPlan]:
    """Run several planners on one problem (figure and bench helper)."""
    return {name: make_planner(name).plan(problem) for name in planners}


def plan_fleet(problem: PlanningProblem, planner: str = "lp") -> FleetPlan:
    """Admission-checked planning: reject SLO-infeasible tenants, then solve.

    Returns a plan over the admitted tenants with the rejected tenants (and
    reasons) recorded on ``plan.rejected``.
    """
    from repro.planning.admission import AdmissionController

    controller = AdmissionController(problem)
    rejected = controller.rejections()
    admitted = [
        spec.tenant_id
        for spec in problem.tenants
        if spec.tenant_id not in rejected
    ]
    if not admitted:
        raise PlanningError(
            "admission control rejected every tenant: "
            + "; ".join(f"{k}: {v}" for k, v in sorted(rejected.items()))
        )
    admitted_problem = (
        problem if not rejected else problem.restricted(admitted)
    )
    plan = make_planner(planner).plan(admitted_problem)
    plan.rejected = dict(rejected)
    return plan
