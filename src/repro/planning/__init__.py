"""Fleet-level joint planning: one budget, one cluster, many tenants.

The paper's knob planner (Section 4.1) optimizes each stream in isolation
against a fixed per-stream budget.  This package lifts that decision one
level up: given heterogeneous *tenants* — different stream counts, quality
weights, cloud cost ratios, forecasts and quality SLOs — it partitions the
shared daily cloud budget and the on-premise cores across them so the
fleet-wide weighted quality is maximized, the multi-tenant analogue of the
Appendix D joint plan.

The pieces, bottom to top:

* :mod:`repro.planning.tenants` — :class:`TenantSpec`, the declarative
  description of one tenant;
* :mod:`repro.planning.demand` — per-tenant quality-vs-budget demand curves
  probed through the Section 4.1 knob planner, assembled into a
  :class:`PlanningProblem`;
* :mod:`repro.planning.solvers` — the :class:`FleetPlanner` protocol and the
  solver ladder (``per_stream`` baseline → ``greedy`` marginal utility →
  ``knapsack`` → joint ``lp``), each rung at least as good as the one below;
* :mod:`repro.planning.allocation` — :class:`BudgetAllocation` /
  :class:`FleetPlan` outputs and the :class:`TenantSubLedger` that deploys a
  tenant's allocation as a capped sub-budget of the fleet's shared ledger;
* :mod:`repro.planning.admission` — SLO admission control: a tenant whose
  SLO is unreachable at *any* feasible allocation is rejected at submit
  time with a classified, non-retryable error.
"""

from repro.planning.admission import AdmissionController, SloAdmissionError
from repro.planning.allocation import (
    BudgetAllocation,
    FleetPlan,
    TenantSubLedger,
    build_tenant_ledgers,
)
from repro.planning.demand import (
    AllocationOption,
    PlannerQualityModel,
    PlanningProblem,
    TenantDemand,
    build_problem,
    build_problem_from_skyscraper,
    per_stream_budget,
)
from repro.planning.solvers import (
    FleetPlanner,
    make_planner,
    plan_fleet,
    planner_names,
    register_planner,
    solve_ladder,
)
from repro.planning.tenants import TenantSpec, tilt_forecast

__all__ = [
    "AdmissionController",
    "AllocationOption",
    "BudgetAllocation",
    "FleetPlan",
    "FleetPlanner",
    "PlannerQualityModel",
    "PlanningProblem",
    "SloAdmissionError",
    "TenantDemand",
    "TenantSpec",
    "TenantSubLedger",
    "build_problem",
    "build_problem_from_skyscraper",
    "build_tenant_ledgers",
    "make_planner",
    "per_stream_budget",
    "plan_fleet",
    "planner_names",
    "register_planner",
    "solve_ladder",
    "tilt_forecast",
]
