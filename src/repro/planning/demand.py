"""Per-tenant demand curves and the joint planning problem.

The bridge between the Section 4.1 knob planner and the fleet-level
allocators: an allocation of ``(cores, cloud dollars/day)`` to a tenant is
worth exactly the expected quality its knob planner can buy with the
resulting per-stream, per-segment compute budget.  This module converts
allocations into budgets (the same arithmetic as
``Skyscraper.budget_core_seconds_per_segment``, but per tenant and with the
tenant's own cloud cost ratio), probes the tenant's quality at a grid of
candidate allocations, and packages everything into a
:class:`PlanningProblem` the solver ladder consumes.

Quality probing goes through a pluggable *quality model* so the solvers and
their tests run on synthetic concave curves without a fitted system, while
production planning uses :class:`PlannerQualityModel` — a memoized wrapper
around :class:`repro.core.planner.KnobPlanner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cost import CostModel
from repro.core.planner import KnobPlanner
from repro.core.profiles import ProfileSet
from repro.errors import ConfigurationError, PlanningError
from repro.planning.tenants import TenantSpec

SECONDS_PER_DAY = 86400.0

#: A quality model maps (tenant, per-stream per-segment core-second budget)
#: to expected quality, raising PlanningError when the budget is infeasible.
QualityModel = Callable[[TenantSpec, float], float]

#: Named core-split candidates shared by the demand grid and the knapsack
#: solver — using the same candidates on both sides is what makes the joint
#: LP a strict relaxation of every knapsack solution.
CORE_SPLIT_NAMES = ("proportional", "equal", "weighted")


def per_stream_budget(
    n_streams: int,
    cores: float,
    cloud_dollars_per_day: float,
    segment_seconds: float,
    utilization: float = 0.95,
    cost_ratio: Optional[float] = None,
    cost_model: Optional[CostModel] = None,
) -> float:
    """Per-stream, per-segment core-second budget of an allocation.

    Mirrors ``Skyscraper.budget_core_seconds_per_segment`` — on-premise
    cores contribute ``cores * segment_seconds * utilization`` core-seconds
    per segment, the daily cloud budget converts through the tenant's cost
    model and spreads over the day's segments — then divides by the
    tenant's stream count, since every stream plans against an equal share.
    """
    if n_streams < 1:
        raise ConfigurationError("n_streams must be >= 1")
    if segment_seconds <= 0:
        raise ConfigurationError("segment_seconds must be positive")
    if cores < 0 or cloud_dollars_per_day < 0:
        raise ConfigurationError("allocations must be non-negative")
    if cost_model is None:
        cost_model = CostModel() if cost_ratio is None else CostModel(cost_ratio)
    on_prem = cores * segment_seconds * utilization
    cloud = 0.0
    if cloud_dollars_per_day > 0:
        dollars_per_core_second = cost_model.cloud_work_dollars(1.0)
        segments_per_day = SECONDS_PER_DAY / segment_seconds
        cloud = cloud_dollars_per_day / dollars_per_core_second / segments_per_day
    return (on_prem + cloud) / n_streams


@dataclass(frozen=True)
class AllocationOption:
    """One candidate allocation for one tenant, priced by its quality.

    Attributes:
        cores: on-premise cores assigned to the tenant (fractional cores
            are fine — cores are time-shared by the fleet scheduler, so an
            allocation is a planning-time share, not a physical partition).
        cloud_dollars_per_day: share of the daily cloud budget.
        budget_core_seconds_per_segment: the per-stream per-segment budget
            the allocation buys (via :func:`per_stream_budget`).
        quality: expected quality of each of the tenant's streams at that
            budget, as priced by the quality model.
    """

    cores: float
    cloud_dollars_per_day: float
    budget_core_seconds_per_segment: float
    quality: float


@dataclass
class TenantDemand:
    """A tenant's feasible allocation options (its discretized demand curve)."""

    spec: TenantSpec
    options: List[AllocationOption] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        """Whether the tenant has at least one feasible allocation option."""
        return bool(self.options)

    @property
    def best_quality(self) -> float:
        """Highest quality over the feasible options (-inf when none)."""
        if not self.options:
            return float("-inf")
        return max(option.quality for option in self.options)


class PlannerQualityModel:
    """Prices a tenant's quality through the Section 4.1 knob planner.

    Quality depends on an allocation only through the scalar per-stream
    budget, so probes memoize on ``(tenant_id, rounded budget)`` — the grid
    construction revisits the same budget through many core/dollar pairs and
    would otherwise re-solve identical LPs.
    """

    def __init__(
        self,
        profiles: ProfileSet,
        n_categories: int,
        default_forecast: Optional[Sequence[float]] = None,
        quality_matrix: Optional[np.ndarray] = None,
    ):
        self.planner = KnobPlanner(profiles, n_categories)
        if default_forecast is None:
            default = np.full(n_categories, 1.0 / n_categories)
        else:
            default = np.asarray(default_forecast, dtype=float)
            if default.shape != (n_categories,):
                raise ConfigurationError(
                    f"default_forecast must have {n_categories} entries, "
                    f"got {default.shape}"
                )
        self.default_forecast = default
        self.quality_matrix = quality_matrix
        self._cache: Dict[Tuple[str, float], float] = {}

    @classmethod
    def from_skyscraper(cls, skyscraper) -> "PlannerQualityModel":
        """Build from a fitted :class:`repro.core.skyscraper.Skyscraper`."""
        forecast = getattr(skyscraper.report, "initial_forecast", None)
        n_categories = int(skyscraper.categorizer.actual_categories)
        return cls(
            skyscraper.profiles,
            n_categories,
            default_forecast=forecast,
        )

    def __call__(self, tenant: TenantSpec, budget: float) -> float:
        if budget <= 0:
            raise PlanningError(
                f"tenant {tenant.tenant_id!r}: per-stream budget must be "
                f"positive, got {budget:.6f}"
            )
        key = (tenant.tenant_id, round(budget, 9))
        if key in self._cache:
            return self._cache[key]
        forecast = (
            tenant.forecast if tenant.forecast is not None else self.default_forecast
        )
        plan = self.planner.plan(forecast, budget, quality_matrix=self.quality_matrix)
        quality = float(plan.expected_quality)
        self._cache[key] = quality
        return quality


@dataclass
class PlanningProblem:
    """Everything the solver ladder needs: tenants, resources, demands.

    Attributes:
        tenants: admitted (or to-be-admitted) tenant specs, in a stable
            order.
        cloud_budget_per_day: the shared daily cloud budget to split.
        cores: total on-premise cores to split (time-shared, so fractional
            per-tenant assignments are legal).
        segment_seconds: segment length of the underlying workload.
        utilization: planning headroom on on-premise cores (matches
            ``SkyscraperResources.utilization``).
        quality_model: callable pricing a tenant's per-stream budget.
        demands: per-tenant discretized demand curves over the candidate
            grid (core splits x budget levels), feasible options only.
        budget_levels: the absolute dollar levels of the candidate grid.
        core_splits: named per-tenant core assignments; each split's cores
            sum to ``cores`` across tenants.
    """

    tenants: List[TenantSpec]
    cloud_budget_per_day: float
    cores: float
    segment_seconds: float
    utilization: float
    quality_model: QualityModel
    demands: Dict[str, TenantDemand]
    budget_levels: Tuple[float, ...]
    core_splits: Dict[str, Dict[str, float]]

    @property
    def total_streams(self) -> int:
        """Streams across all tenants (the per-stream split denominator)."""
        return sum(spec.n_streams for spec in self.tenants)

    @property
    def total_weight(self) -> float:
        """Stream-weighted priority mass across all tenants."""
        return sum(spec.total_weight for spec in self.tenants)

    def tenant(self, tenant_id: str) -> TenantSpec:
        """Look up a tenant spec by id, raising on unknown tenants."""
        for spec in self.tenants:
            if spec.tenant_id == tenant_id:
                return spec
        raise ConfigurationError(f"unknown tenant {tenant_id!r}")

    def budget_for(
        self, spec: TenantSpec, cores: float, cloud_dollars_per_day: float
    ) -> float:
        """The per-stream budget an allocation buys for ``spec``."""
        return per_stream_budget(
            spec.n_streams,
            cores,
            cloud_dollars_per_day,
            self.segment_seconds,
            self.utilization,
            cost_ratio=spec.cost_ratio,
        )

    def quality_at(
        self, spec: TenantSpec, cores: float, cloud_dollars_per_day: float
    ) -> Optional[float]:
        """Quality of an arbitrary allocation, or ``None`` when infeasible."""
        budget = self.budget_for(spec, cores, cloud_dollars_per_day)
        try:
            return self.quality_model(spec, budget)
        except PlanningError:
            return None

    def option_at(
        self, spec: TenantSpec, cores: float, cloud_dollars_per_day: float
    ) -> Optional[AllocationOption]:
        """An :class:`AllocationOption` for an arbitrary allocation."""
        quality = self.quality_at(spec, cores, cloud_dollars_per_day)
        if quality is None:
            return None
        return AllocationOption(
            cores=cores,
            cloud_dollars_per_day=cloud_dollars_per_day,
            budget_core_seconds_per_segment=self.budget_for(
                spec, cores, cloud_dollars_per_day
            ),
            quality=quality,
        )

    def restricted(self, tenant_ids: Sequence[str]) -> "PlanningProblem":
        """The same problem over a subset of tenants (for admission)."""
        keep = set(tenant_ids)
        unknown = keep - {spec.tenant_id for spec in self.tenants}
        if unknown:
            raise ConfigurationError(f"unknown tenants {sorted(unknown)!r}")
        tenants = [spec for spec in self.tenants if spec.tenant_id in keep]
        if not tenants:
            raise ConfigurationError("restricted problem would have no tenants")
        return build_problem(
            tenants,
            self.quality_model,
            cloud_budget_per_day=self.cloud_budget_per_day,
            cores=self.cores,
            segment_seconds=self.segment_seconds,
            utilization=self.utilization,
            n_budget_levels=len(self.budget_levels),
        )


def _core_splits(
    tenants: Sequence[TenantSpec], cores: float
) -> Dict[str, Dict[str, float]]:
    """The named per-tenant core assignments; each sums to ``cores``."""
    total_streams = sum(spec.n_streams for spec in tenants)
    total_weight = sum(spec.total_weight for spec in tenants)
    splits: Dict[str, Dict[str, float]] = {
        "proportional": {
            spec.tenant_id: cores * spec.n_streams / total_streams
            for spec in tenants
        },
        "equal": {spec.tenant_id: cores / len(tenants) for spec in tenants},
        "weighted": {
            spec.tenant_id: cores * spec.total_weight / total_weight
            for spec in tenants
        },
    }
    return splits


def build_problem(
    tenants: Sequence[TenantSpec],
    quality_model: QualityModel,
    cloud_budget_per_day: float,
    cores: float,
    segment_seconds: float,
    utilization: float = 0.95,
    n_budget_levels: int = 5,
) -> PlanningProblem:
    """Assemble a :class:`PlanningProblem` by probing the quality model.

    The candidate grid crosses the named core splits (proportional, equal,
    weight-proportional — the same candidates the knapsack solver searches)
    with ``n_budget_levels`` evenly spaced dollar levels from 0 to the full
    budget.  Infeasible grid points (the knob planner cannot afford even its
    cheapest configuration) are dropped; a tenant whose every grid point is
    infeasible surfaces as an empty demand, which admission control turns
    into a rejection.
    """
    tenants = list(tenants)
    if not tenants:
        raise ConfigurationError("at least one tenant is required")
    seen = set()
    for spec in tenants:
        if spec.tenant_id in seen:
            raise ConfigurationError(f"duplicate tenant {spec.tenant_id!r}")
        seen.add(spec.tenant_id)
    if cloud_budget_per_day < 0:
        raise ConfigurationError("cloud_budget_per_day must be non-negative")
    if cores <= 0:
        raise ConfigurationError("cores must be positive")
    if segment_seconds <= 0:
        raise ConfigurationError("segment_seconds must be positive")
    if not 0 < utilization <= 1:
        raise ConfigurationError("utilization must be in (0, 1]")
    if n_budget_levels < 2:
        raise ConfigurationError("n_budget_levels must be at least 2")

    if cloud_budget_per_day > 0:
        budget_levels = tuple(
            cloud_budget_per_day * index / (n_budget_levels - 1)
            for index in range(n_budget_levels)
        )
    else:
        budget_levels = (0.0,)
    core_splits = _core_splits(tenants, cores)

    problem = PlanningProblem(
        tenants=tenants,
        cloud_budget_per_day=cloud_budget_per_day,
        cores=cores,
        segment_seconds=segment_seconds,
        utilization=utilization,
        quality_model=quality_model,
        demands={},
        budget_levels=budget_levels,
        core_splits=core_splits,
    )
    for spec in tenants:
        demand = TenantDemand(spec=spec)
        seen_points = set()
        for split in core_splits.values():
            tenant_cores = split[spec.tenant_id]
            for dollars in budget_levels:
                point = (round(tenant_cores, 9), round(dollars, 9))
                if point in seen_points:
                    continue
                seen_points.add(point)
                option = problem.option_at(spec, tenant_cores, dollars)
                if option is not None:
                    demand.options.append(option)
        problem.demands[spec.tenant_id] = demand
    return problem


def build_problem_from_skyscraper(
    skyscraper,
    tenants: Sequence[TenantSpec],
    cloud_budget_per_day: float,
    cores: float,
    segment_seconds: float,
    utilization: float = 0.95,
    n_budget_levels: int = 5,
) -> PlanningProblem:
    """A :class:`PlanningProblem` priced by a fitted Skyscraper's planner."""
    return build_problem(
        tenants,
        PlannerQualityModel.from_skyscraper(skyscraper),
        cloud_budget_per_day=cloud_budget_per_day,
        cores=cores,
        segment_seconds=segment_seconds,
        utilization=utilization,
        n_budget_levels=n_budget_levels,
    )


def derive_tenant_specs(
    stream_counts: Mapping[str, int],
    overrides: Optional[Mapping[str, TenantSpec]] = None,
) -> List[TenantSpec]:
    """Tenant specs from observed per-tenant stream counts.

    ``overrides`` (keyed by tenant id) contribute weight/SLO/cost-ratio/
    forecast; stream counts always come from the observed fleet, so a spec
    can never disagree with the scenario it governs.
    """
    overrides = dict(overrides or {})
    specs: List[TenantSpec] = []
    for tenant_id in sorted(stream_counts):
        count = stream_counts[tenant_id]
        base = overrides.get(tenant_id)
        if base is None:
            specs.append(TenantSpec(tenant_id=tenant_id, n_streams=count))
        else:
            specs.append(
                TenantSpec(
                    tenant_id=tenant_id,
                    n_streams=count,
                    weight=base.weight,
                    min_quality=base.min_quality,
                    cost_ratio=base.cost_ratio,
                    forecast=base.forecast,
                )
            )
    return specs
